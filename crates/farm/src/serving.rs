//! Serving-path building blocks: bounded request queues and the microbatch
//! coalescer.
//!
//! Training amortizes the compiled-unitary walk over 32-sample probe blocks
//! (PR 3); serving gets the same economics by *coalescing*: instead of
//! dispatching each queued inference request as its own
//! `forward_batch_into` call, an idle worker drains up to
//! [`CoalescePolicy::max_batch`] requests that share the pinned compile
//! base into one call, paying the per-call compile/setup cost once. The
//! price is queueing delay, so the policy carries an explicit max-wait
//! deadline: a partial batch is flushed once its **oldest** request has
//! waited `max_wait_ns`, which bounds the latency any single request can
//! lose to batching. Both knobs are plain data — the discrete-event
//! simulator (`photon-sim`) sweeps them to put numbers on the trade-off.
//!
//! Everything here is pure bookkeeping on virtual-nanosecond timestamps:
//! no clocks, no threads, no I/O. That is what lets the simulator replay
//! a million-request run bitwise.

use std::collections::VecDeque;

/// One queued inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeRequest {
    /// Unique, monotonically assigned request id.
    pub id: u64,
    /// Index of the submitting tenant.
    pub tenant: usize,
    /// Arrival timestamp in virtual nanoseconds.
    pub submitted_ns: u64,
    /// Absolute completion deadline in virtual nanoseconds
    /// ([`NO_DEADLINE`] when the request carries none). A request past its
    /// deadline is dead weight: serving it wastes chip time on an answer
    /// the caller has already abandoned, so drains check expiry and drop
    /// such requests as *expired* instead of serving them.
    pub deadline_ns: u64,
}

/// Deadline sentinel: the request never expires.
pub const NO_DEADLINE: u64 = u64::MAX;

impl ServeRequest {
    /// Whether the request's deadline has passed at `now_ns`.
    pub fn expired(&self, now_ns: u64) -> bool {
        now_ns >= self.deadline_ns
    }
}

/// Microbatch coalescing policy: how many requests one dispatch may merge,
/// and how long a partial batch may hold its oldest request hostage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescePolicy {
    /// Maximum requests per coalesced `forward_batch_into` call.
    pub max_batch: usize,
    /// Flush deadline: serve a partial batch once the oldest queued request
    /// has waited this long (virtual nanoseconds).
    pub max_wait_ns: u64,
}

impl CoalescePolicy {
    /// A coalescing policy.
    ///
    /// # Panics
    ///
    /// Panics when `max_batch` is zero — a batch of zero can never drain.
    pub fn new(max_batch: usize, max_wait_ns: u64) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        CoalescePolicy {
            max_batch,
            max_wait_ns,
        }
    }

    /// The degenerate policy: every request is its own batch, dispatched
    /// immediately. This is the "before" arm of the coalescing comparison.
    pub fn uncoalesced() -> Self {
        CoalescePolicy {
            max_batch: 1,
            max_wait_ns: 0,
        }
    }

    /// Decides what an idle worker should do given `depth` queued requests
    /// whose oldest arrived at `oldest_submitted_ns`.
    ///
    /// * A full batch (`depth >= max_batch`) serves immediately.
    /// * A partial batch serves once the oldest request's deadline
    ///   (`submitted + max_wait_ns`) has passed, and otherwise reports the
    ///   exact virtual time to re-check, so an event-driven caller can arm
    ///   a single flush timer instead of polling.
    /// * An empty queue is [`DrainDecision::Idle`].
    ///
    /// # Panics
    ///
    /// Panics when `depth > 0` but no oldest timestamp is supplied.
    pub fn decide(
        &self,
        now_ns: u64,
        depth: usize,
        oldest_submitted_ns: Option<u64>,
    ) -> DrainDecision {
        if depth == 0 {
            return DrainDecision::Idle;
        }
        if depth >= self.max_batch {
            return DrainDecision::Serve(self.max_batch);
        }
        let oldest = oldest_submitted_ns.expect("non-empty queue must have an oldest timestamp");
        let deadline = oldest.saturating_add(self.max_wait_ns);
        if now_ns >= deadline {
            DrainDecision::Serve(depth)
        } else {
            DrainDecision::WaitUntil(deadline)
        }
    }
}

/// What [`CoalescePolicy::decide`] tells an idle worker to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainDecision {
    /// Drain exactly this many requests into one batch now.
    Serve(usize),
    /// Keep accumulating; re-evaluate at this virtual time (the oldest
    /// request's flush deadline).
    WaitUntil(u64),
    /// Nothing queued.
    Idle,
}

/// A bounded FIFO of serve requests with shed accounting.
///
/// Arrivals beyond `cap` are *shed* (rejected at admission) rather than
/// queued without bound — under sustained overload an unbounded queue just
/// converts every request into a timeout, while a bounded one keeps p99
/// finite for the requests it does admit. Shed counts and the high-water
/// depth are tracked so reports can show what overload actually cost.
#[derive(Debug)]
pub struct RequestQueue {
    cap: usize,
    queue: VecDeque<ServeRequest>,
    shed: u64,
    peak_depth: usize,
}

impl RequestQueue {
    /// An empty queue admitting at most `cap` requests at once.
    ///
    /// # Panics
    ///
    /// Panics when `cap` is zero — such a queue would shed everything.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be at least 1");
        RequestQueue {
            cap,
            queue: VecDeque::new(),
            shed: 0,
            peak_depth: 0,
        }
    }

    /// Admits a request, or sheds it when the queue is full. Returns
    /// whether the request was admitted.
    pub fn push(&mut self, req: ServeRequest) -> bool {
        if self.queue.len() >= self.cap {
            self.shed += 1;
            return false;
        }
        self.queue.push_back(req);
        self.peak_depth = self.peak_depth.max(self.queue.len());
        true
    }

    /// Removes and returns the oldest queued request.
    pub fn pop_front(&mut self) -> Option<ServeRequest> {
        self.queue.pop_front()
    }

    /// Re-admits a request at the *front* of the queue — watchdog-rescued
    /// work goes back ahead of newer arrivals, so the time it already
    /// waited keeps counting toward its deadline rather than being reset
    /// to the back of the line. Sheds when full, like [`push`](Self::push).
    pub fn requeue_front(&mut self, req: ServeRequest) -> bool {
        if self.queue.len() >= self.cap {
            self.shed += 1;
            return false;
        }
        self.queue.push_front(req);
        self.peak_depth = self.peak_depth.max(self.queue.len());
        true
    }

    /// Arrival time of the oldest queued request, if any.
    pub fn front_submitted_ns(&self) -> Option<u64> {
        self.queue.front().map(|r| r.submitted_ns)
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Requests shed at admission so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// High-water queue depth observed so far.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, at: u64) -> ServeRequest {
        ServeRequest {
            id,
            tenant: 0,
            submitted_ns: at,
            deadline_ns: NO_DEADLINE,
        }
    }

    #[test]
    fn requests_expire_at_their_deadline() {
        let mut r = req(0, 100);
        assert!(!r.expired(u64::MAX - 1), "NO_DEADLINE never expires early");
        r.deadline_ns = 500;
        assert!(!r.expired(499));
        assert!(r.expired(500), "deadline instant counts as expired");
        assert!(r.expired(501));
    }

    #[test]
    fn uncoalesced_serves_each_request_immediately() {
        let p = CoalescePolicy::uncoalesced();
        assert_eq!(p.decide(0, 0, None), DrainDecision::Idle);
        assert_eq!(p.decide(5, 1, Some(5)), DrainDecision::Serve(1));
        // Even a deep queue drains one at a time.
        assert_eq!(p.decide(5, 10, Some(0)), DrainDecision::Serve(1));
    }

    #[test]
    fn full_batch_serves_without_waiting() {
        let p = CoalescePolicy::new(4, 1_000_000);
        assert_eq!(p.decide(10, 4, Some(10)), DrainDecision::Serve(4));
        assert_eq!(p.decide(10, 9, Some(10)), DrainDecision::Serve(4));
    }

    #[test]
    fn partial_batch_waits_until_oldest_deadline_then_flushes() {
        let p = CoalescePolicy::new(8, 1_000);
        // Oldest arrived at t=100 → deadline 1_100.
        assert_eq!(p.decide(100, 3, Some(100)), DrainDecision::WaitUntil(1_100));
        assert_eq!(p.decide(1_099, 3, Some(100)), DrainDecision::WaitUntil(1_100));
        assert_eq!(p.decide(1_100, 3, Some(100)), DrainDecision::Serve(3));
        assert_eq!(p.decide(5_000, 3, Some(100)), DrainDecision::Serve(3));
    }

    #[test]
    fn zero_wait_flushes_partial_batches_immediately() {
        let p = CoalescePolicy::new(8, 0);
        assert_eq!(p.decide(7, 2, Some(7)), DrainDecision::Serve(2));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_batch_policy_rejected() {
        let _ = CoalescePolicy::new(0, 100);
    }

    #[test]
    fn queue_sheds_beyond_cap_and_tracks_peak() {
        let mut q = RequestQueue::new(2);
        assert!(q.push(req(0, 10)));
        assert!(q.push(req(1, 20)));
        assert!(!q.push(req(2, 30)), "third request must be shed");
        assert_eq!(q.shed(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak_depth(), 2);
        assert_eq!(q.front_submitted_ns(), Some(10));
        assert_eq!(q.pop_front().map(|r| r.id), Some(0));
        // Room again: admitted, and the peak stays at the high-water mark.
        assert!(q.push(req(3, 40)));
        assert_eq!(q.peak_depth(), 2);
        assert_eq!(q.shed(), 1);
    }

    #[test]
    fn requeue_front_preserves_deadline_priority() {
        let mut q = RequestQueue::new(2);
        assert!(q.push(req(1, 100)));
        assert!(q.requeue_front(req(0, 50)), "rescued request jumps the line");
        assert_eq!(q.front_submitted_ns(), Some(50));
        // Full queue sheds the requeue like a push.
        assert!(!q.requeue_front(req(2, 10)));
        assert_eq!(q.shed(), 1);
        assert_eq!(q.pop_front().map(|r| r.id), Some(0));
        assert_eq!(q.pop_front().map(|r| r.id), Some(1));
    }

    #[test]
    fn queue_is_fifo() {
        let mut q = RequestQueue::new(8);
        for id in 0..5 {
            assert!(q.push(req(id, id * 100)));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_front().map(|r| r.id)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.front_submitted_ns(), None);
    }
}
