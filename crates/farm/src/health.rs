//! Per-worker health state machine.
//!
//! Every worker in the farm carries a [`HealthMonitor`] fed one boolean per
//! completed slice: did the slice make progress (`Completed` or a clean
//! preemption), or did it burn its watchdog budget? A rolling window of
//! those outcomes drives the ladder
//!
//! ```text
//! Healthy ──failures──▶ Degraded ──more failures──▶ Quarantined
//!    ▲                      │
//!    └────clean streak──────┘                        (absorbing)
//! ```
//!
//! plus a terminal `Dead` state the chaos harness (or an operator) forces
//! directly. `Quarantined` and `Dead` workers are never dispatched to again;
//! jobs journaled on them migrate to surviving workers and resume bitwise
//! identically, because the journal — not the worker — owns the run state.

use std::fmt;

use crate::resilience::RollingWindow;

/// Where a worker sits on the healthy → degraded → quarantined ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipHealth {
    /// Serving normally.
    Healthy,
    /// Still serving, but recent slices have failed; one more burst of
    /// failures quarantines it.
    Degraded,
    /// Pulled from the dispatch rotation. Absorbing: the farm never
    /// un-quarantines a worker within a run.
    Quarantined,
    /// Killed (chaos harness or operator). Absorbing.
    Dead,
}

impl ChipHealth {
    /// Stable lower-case label used in trace events and reports.
    pub fn label(self) -> &'static str {
        match self {
            ChipHealth::Healthy => "healthy",
            ChipHealth::Degraded => "degraded",
            ChipHealth::Quarantined => "quarantined",
            ChipHealth::Dead => "dead",
        }
    }

    /// Whether the scheduler may dispatch new slices to this worker.
    pub fn can_serve(self) -> bool {
        matches!(self, ChipHealth::Healthy | ChipHealth::Degraded)
    }
}

impl fmt::Display for ChipHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Thresholds driving the health ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Rolling window length, in slices.
    pub window: usize,
    /// Failures inside the window that degrade a healthy worker.
    pub degrade_after: u32,
    /// Failures inside the window that quarantine the worker outright.
    pub quarantine_after: u32,
    /// Consecutive clean slices that promote a degraded worker back to
    /// healthy (and wipe its window).
    pub recover_after: u32,
}

impl HealthPolicy {
    /// The default ladder: window of 8 slices, degrade at 2 failures,
    /// quarantine at 4, recover after 3 clean slices in a row.
    pub fn standard() -> Self {
        HealthPolicy {
            window: 8,
            degrade_after: 2,
            quarantine_after: 4,
            recover_after: 3,
        }
    }

    /// A hair-trigger ladder for chaos tests: one failure degrades, two
    /// quarantine.
    pub fn strict() -> Self {
        HealthPolicy {
            window: 4,
            degrade_after: 1,
            quarantine_after: 2,
            recover_after: 2,
        }
    }
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy::standard()
    }
}

/// A state change produced by [`HealthMonitor::record`] or
/// [`HealthMonitor::force`], ready to be emitted as telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTransition {
    /// State before.
    pub from: ChipHealth,
    /// State after.
    pub to: ChipHealth,
    /// Human-readable cause ("3 failed slices in window of 8", "chaos
    /// kill", ...).
    pub reason: String,
}

/// Rolling-window health tracker for one worker.
///
/// The window math (bounded outcome history, failure count, success
/// streak, recovery wipe) is the shared [`RollingWindow`] — the same
/// helper behind the serving layer's [`CircuitBreaker`](crate::CircuitBreaker).
#[derive(Debug)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    window: RollingWindow,
    state: ChipHealth,
}

impl HealthMonitor {
    /// A fresh, healthy monitor.
    pub fn new(policy: HealthPolicy) -> Self {
        HealthMonitor {
            policy,
            window: RollingWindow::new(policy.window),
            state: ChipHealth::Healthy,
        }
    }

    /// Current state.
    pub fn state(&self) -> ChipHealth {
        self.state
    }

    /// Records one slice outcome (`true` = made progress). Returns the
    /// transition it caused, if any. No-op once the worker is quarantined
    /// or dead — those states are absorbing.
    pub fn record(&mut self, ok: bool) -> Option<HealthTransition> {
        if !self.state.can_serve() {
            return None;
        }
        self.window.push(ok);
        let failures = self.window.failures();
        let from = self.state;
        let (to, reason) = if failures >= self.policy.quarantine_after {
            (
                ChipHealth::Quarantined,
                format!(
                    "{failures} failed slices in window of {}",
                    self.window.len()
                ),
            )
        } else if from == ChipHealth::Degraded
            && ok
            && self.window.ok_streak() >= self.policy.recover_after
        {
            (
                ChipHealth::Healthy,
                format!("{} clean slices in a row", self.window.ok_streak()),
            )
        } else if failures >= self.policy.degrade_after {
            (
                ChipHealth::Degraded,
                format!(
                    "{failures} failed slices in window of {}",
                    self.window.len()
                ),
            )
        } else {
            (from, String::new())
        };
        if to == from {
            return None;
        }
        self.state = to;
        if to == ChipHealth::Healthy {
            // Fresh slate after a recovery: old failures no longer count.
            self.window.clear();
        }
        Some(HealthTransition { from, to, reason })
    }

    /// Forces the worker into `to` (chaos kill, operator quarantine).
    /// Returns the transition unless the worker was already there.
    pub fn force(&mut self, to: ChipHealth, reason: &str) -> Option<HealthTransition> {
        let from = self.state;
        if from == to {
            return None;
        }
        self.state = to;
        Some(HealthTransition {
            from,
            to,
            reason: reason.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            window: 4,
            degrade_after: 2,
            quarantine_after: 3,
            recover_after: 2,
        }
    }

    #[test]
    fn escalates_healthy_to_degraded_to_quarantined() {
        let mut m = HealthMonitor::new(policy());
        assert_eq!(m.state(), ChipHealth::Healthy);
        assert!(m.record(true).is_none());
        assert!(m.record(false).is_none(), "one failure is tolerated");
        let t = m.record(false).expect("second failure degrades");
        assert_eq!((t.from, t.to), (ChipHealth::Healthy, ChipHealth::Degraded));
        let t = m.record(false).expect("third failure quarantines");
        assert_eq!((t.from, t.to), (ChipHealth::Degraded, ChipHealth::Quarantined));
        // Quarantine is absorbing: further outcomes are ignored.
        assert!(m.record(true).is_none());
        assert!(m.record(false).is_none());
        assert_eq!(m.state(), ChipHealth::Quarantined);
    }

    #[test]
    fn clean_streak_recovers_a_degraded_worker() {
        let mut m = HealthMonitor::new(policy());
        m.record(false);
        m.record(false);
        assert_eq!(m.state(), ChipHealth::Degraded);
        assert!(m.record(true).is_none(), "one clean slice is not enough");
        let t = m.record(true).expect("streak of 2 recovers");
        assert_eq!((t.from, t.to), (ChipHealth::Degraded, ChipHealth::Healthy));
        // Recovery wipes the window: the old failures no longer count
        // toward a fresh degradation.
        assert!(m.record(false).is_none());
        assert_eq!(m.state(), ChipHealth::Healthy);
    }

    #[test]
    fn forced_kill_overrides_any_state_once() {
        let mut m = HealthMonitor::new(policy());
        let t = m.force(ChipHealth::Dead, "chaos kill").unwrap();
        assert_eq!((t.from, t.to), (ChipHealth::Healthy, ChipHealth::Dead));
        assert!(m.force(ChipHealth::Dead, "again").is_none());
        assert!(!m.state().can_serve());
        assert!(m.record(true).is_none(), "dead workers record nothing");
    }

    #[test]
    fn window_slides_old_failures_out() {
        let mut m = HealthMonitor::new(HealthPolicy {
            window: 3,
            degrade_after: 2,
            quarantine_after: 99,
            recover_after: 99,
        });
        m.record(false);
        // Three clean slices push the failure out of the window.
        m.record(true);
        m.record(true);
        m.record(true);
        assert!(m.record(false).is_none(), "only 1 failure in window now");
        assert_eq!(m.state(), ChipHealth::Healthy);
    }
}
