//! In-situ continual recalibration under live traffic.
//!
//! A deployed chip drifts; taking it offline to recalibrate costs serving
//! capacity. This module closes the loop *in place*: the same physical
//! chip keeps serving its deployed (pinned) theta while, cycle after
//! cycle, the controller
//!
//! 1. **probes** the drifted chip (a calibration sweep warm-started from
//!    the previous error estimate — [`photon_calib::recalibrate`]),
//! 2. **fine-tunes a shadow theta** against the freshly calibrated model
//!    (a durable [`Trainer::train_durable_from`] run seeded from the
//!    *deployed* parameters, sliceable via `epoch_budget`),
//! 3. **canaries** the shadow: per-sample losses of deployed vs shadow on
//!    a seeded traffic slice, gated by the Mann-Whitney U test, and
//! 4. **promotes or rolls back** atomically: the verdict — including the
//!    next deployed theta — is committed to a CRC-framed write-ahead
//!    record *before* the chip is re-pinned, so a crash at any byte
//!    leaves the deployment either fully old or fully new, never torn.
//!
//! Every random decision derives from the cycle's stream seeds, every
//! chip-state mutation happens at a serial [`OnnChip::advance_to`] /
//! [`OnnChip::pin_compile_base`] control point, and the shadow run's
//! steps are offset past the cycle's base step (see [`run_online`]), so
//! the whole loop is bitwise-replayable at any `PHOTON_THREADS` and
//! resumable after a kill via [`run_online`]'s write-ahead journal.

use std::fmt;
use std::fs;
use std::io::{self, Write as IoWrite};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use photon_calib::{recalibrate, CalibError, CalibrationSettings};
use photon_core::{
    chip_batch_loss_pooled, crc32, epoch_seed, evaluate_chip_pooled, mann_whitney_u,
    ClassificationHead, CoreError, DurableOptions, Evaluation, Method, ModelChoice, RunJournal,
    RunOutcome, TrainConfig, TrainOutcome, Trainer, WatchdogPolicy,
};
use photon_data::Dataset;
use photon_exec::ExecPool;
use photon_linalg::{CVector, RVector};
use photon_photonics::{
    AbortFlag, Architecture, BatchScratch, CacheStats, ChipScratch, ErrorVector, Network, OnnChip,
};
use photon_trace::{TraceEvent, TraceHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// File name of the online controller's write-ahead journal inside the
/// run directory.
pub const ONLINE_WAL: &str = "online.journal";

const WAL_MAGIC: &str = "photon-online v1";

// Stream tags: each cycle's probe sweep, shadow fine-tune, and canary
// slice draw from independent streams derived from (root ^ tag, cycle).
const PROBE_TAG: u64 = 0x5052_4F42; // "PROB"
const SHADOW_TAG: u64 = 0x5348_4144; // "SHAD"
const CANARY_TAG: u64 = 0x4341_4E41; // "CANA"

fn stream(root: u64, tag: u64, cycle: u64) -> u64 {
    epoch_seed(root ^ tag, cycle as usize)
}

/// Configuration of the online recalibration controller.
#[derive(Debug, Clone)]
pub struct OnlineOptions {
    /// Recalibration cycles to run.
    pub cycles: usize,
    /// Root seed; every probe/shadow/canary stream derives from it.
    pub root_seed: u64,
    /// Probe sweep budget per cycle (the piggybacked calibration traffic).
    pub probe: CalibrationSettings,
    /// Shadow fine-tune configuration (its `epochs` is the per-cycle
    /// training budget).
    pub shadow: TrainConfig,
    /// Shadow fine-tune method. Defaults to the paper's
    /// `ZO-LCNG (calibrated)`, which is what the per-cycle recalibration
    /// feeds.
    pub shadow_method: Method,
    /// Optional epoch budget per durable slice of the shadow run: the
    /// controller keeps resuming until the run completes, exactly like a
    /// preempting farm scheduler.
    pub epoch_budget: Option<usize>,
    /// Optional watchdog for the shadow run's chip queries.
    pub watchdog: Option<WatchdogPolicy>,
    /// Canary *requests* per arm. Each request is a microbatch of
    /// [`canary_batch`](Self::canary_batch) test samples served under
    /// both thetas; per-request mean losses feed the Mann-Whitney gate.
    /// Values ≤ 10 keep the pooled sample within the exact Mann-Whitney
    /// range.
    pub canary_samples: usize,
    /// Test samples averaged per canary request. Canary traffic arrives
    /// as microbatches, exactly like inference traffic; comparing
    /// per-microbatch means instead of raw per-sample losses shrinks the
    /// heavy-tailed cross-entropy variance the rank test has to overcome.
    pub canary_batch: usize,
    /// Two-sided significance level the canary must clear to promote.
    pub alpha: f64,
    /// Trace sink for canary/promotion/rollback events.
    pub trace: TraceHandle,
}

impl OnlineOptions {
    /// Defaults: `ZO-LCNG (calibrated)` shadow method, default probe
    /// sweep, 8 canary requests of 4 samples per arm, `alpha = 0.05`, no
    /// slicing, no watchdog, no tracing.
    pub fn new(cycles: usize, root_seed: u64, shadow: TrainConfig) -> Self {
        OnlineOptions {
            cycles,
            root_seed,
            probe: CalibrationSettings::default(),
            shadow,
            shadow_method: Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            epoch_budget: None,
            watchdog: None,
            canary_samples: 8,
            canary_batch: 4,
            alpha: 0.05,
            trace: TraceHandle::null(),
        }
    }

    /// Overrides the probe sweep settings.
    #[must_use]
    pub fn with_probe(mut self, probe: CalibrationSettings) -> Self {
        self.probe = probe;
        self
    }

    /// Slices the shadow run into durable `budget`-epoch quanta.
    #[must_use]
    pub fn with_epoch_budget(mut self, budget: usize) -> Self {
        assert!(budget >= 1, "epoch budget must be at least 1");
        self.epoch_budget = Some(budget);
        self
    }

    /// Sets the canary request count (per arm) and significance level.
    #[must_use]
    pub fn with_canary(mut self, samples: usize, alpha: f64) -> Self {
        assert!(samples >= 1, "canary needs at least one request per arm");
        assert!((0.0..=1.0).contains(&alpha), "alpha {alpha}");
        self.canary_samples = samples;
        self.alpha = alpha;
        self
    }

    /// Sets the microbatch size of each canary request.
    #[must_use]
    pub fn with_canary_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "canary microbatch must hold at least 1 sample");
        self.canary_batch = batch;
        self
    }

    /// Attaches a trace sink.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }
}

/// One committed recalibration cycle — also the write-ahead record:
/// everything needed to restart the controller after this cycle lives
/// here.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleRecord {
    /// Cycle number, 1-based.
    pub cycle: u64,
    /// Chip step the cycle started (and served) at.
    pub base_step: u64,
    /// First chip step of the *next* cycle.
    pub next_step: u64,
    /// Whether the shadow theta was promoted.
    pub promoted: bool,
    /// Two-sided Mann-Whitney p-value of the canary comparison.
    pub p_value: f64,
    /// Mean per-sample canary loss of the deployed theta.
    pub baseline_loss: f64,
    /// Mean per-sample canary loss of the shadow theta.
    pub shadow_loss: f64,
    /// Epochs the shadow fine-tune ran.
    pub shadow_epochs: u64,
    /// Deployed theta *after* this cycle (the shadow on promotion, the
    /// previous deployment on rollback).
    pub theta: RVector,
    /// Error estimate from this cycle's probe sweep (the next cycle's
    /// warm-start prior).
    pub errors: ErrorVector,
}

/// Result of a completed [`run_online`] loop.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// One record per cycle, in order (includes cycles replayed from the
    /// write-ahead journal on resume).
    pub cycles: Vec<CycleRecord>,
    /// Final deployed theta.
    pub deployed: RVector,
    /// Final error estimate (prior for a future cycle).
    pub errors: ErrorVector,
    /// Cycles that promoted their shadow.
    pub promotions: u64,
    /// Cycles that rolled their shadow back.
    pub rollbacks: u64,
    /// Test-set evaluation of the final deployment on the live (drifted)
    /// chip.
    pub final_eval: Evaluation,
}

/// Errors raised by the online controller.
#[derive(Debug)]
#[non_exhaustive]
pub enum OnlineError {
    /// Filesystem failure on the write-ahead journal.
    Io(io::Error),
    /// The probe sweep's model fit failed.
    Calib(CalibError),
    /// The shadow fine-tune failed.
    Core(CoreError),
    /// The write-ahead journal contradicts the caller's configuration.
    Wal(String),
    /// The shadow run aborted non-resumably.
    ShadowAborted(String),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::Io(e) => write!(f, "online journal I/O: {e}"),
            OnlineError::Calib(e) => write!(f, "probe recalibration failed: {e}"),
            OnlineError::Core(e) => write!(f, "shadow fine-tune failed: {e}"),
            OnlineError::Wal(msg) => write!(f, "online journal: {msg}"),
            OnlineError::ShadowAborted(msg) => {
                write!(f, "shadow run aborted non-resumably: {msg}")
            }
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<io::Error> for OnlineError {
    fn from(e: io::Error) -> Self {
        OnlineError::Io(e)
    }
}

impl From<CalibError> for OnlineError {
    fn from(e: CalibError) -> Self {
        OnlineError::Calib(e)
    }
}

impl From<CoreError> for OnlineError {
    fn from(e: CoreError) -> Self {
        OnlineError::Core(e)
    }
}

/// An [`OnnChip`] adapter that offsets every [`OnnChip::advance_to`] by a
/// fixed base, so a shadow fine-tune's iteration steps `1, 2, …` land on
/// fresh, monotonically increasing chip steps past the cycle's base — the
/// drifted chip never moves backwards, and per-step fault state (attempt
/// counters) resets exactly once per shadow iteration.
///
/// It also **swallows `pin_compile_base`**: while the shadow trains, the
/// *deployed* pin must keep serving inference traffic, so the trainer's
/// per-iteration pin hints are dropped rather than forwarded (a pure
/// performance hint — measurement results stay a function of theta).
struct SteppedChip<'c, C: OnnChip> {
    inner: &'c C,
    offset: u64,
    max_step: AtomicU64,
}

impl<'c, C: OnnChip> SteppedChip<'c, C> {
    fn new(inner: &'c C, offset: u64) -> Self {
        SteppedChip {
            inner,
            offset,
            max_step: AtomicU64::new(offset),
        }
    }

    /// Highest inner chip step this adapter has advanced to.
    #[cfg(test)]
    fn max_step(&self) -> u64 {
        self.max_step.load(Ordering::Relaxed)
    }
}

impl<C: OnnChip> OnnChip for SteppedChip<'_, C> {
    fn architecture(&self) -> &Architecture {
        self.inner.architecture()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }

    fn param_count(&self) -> usize {
        self.inner.param_count()
    }

    fn init_params<R: Rng + ?Sized>(&self, rng: &mut R) -> RVector {
        self.inner.init_params(rng)
    }

    fn forward_into<'s>(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &'s mut ChipScratch,
    ) -> &'s CVector {
        self.inner.forward_into(x, theta, scratch)
    }

    fn forward_powers_into<'s>(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &'s mut ChipScratch,
    ) -> &'s RVector {
        self.inner.forward_powers_into(x, theta, scratch)
    }

    fn forward_batch_into<'s>(
        &self,
        xs: &[&CVector],
        theta: &RVector,
        scratch: &'s mut BatchScratch,
    ) -> &'s [CVector] {
        self.inner.forward_batch_into(xs, theta, scratch)
    }

    fn forward_powers_batch_into<'s>(
        &self,
        xs: &[&CVector],
        theta: &RVector,
        scratch: &'s mut BatchScratch,
    ) -> &'s [RVector] {
        self.inner.forward_powers_batch_into(xs, theta, scratch)
    }

    fn query_count(&self) -> u64 {
        self.inner.query_count()
    }

    fn reset_query_count(&self) {
        self.inner.reset_query_count()
    }

    fn oracle_errors(&self) -> ErrorVector {
        self.inner.oracle_errors()
    }

    fn oracle_network(&self) -> Network {
        self.inner.oracle_network()
    }

    fn advance_to(&self, step: u64) {
        let inner_step = self.offset + step;
        self.max_step.fetch_max(inner_step, Ordering::Relaxed);
        self.inner.advance_to(inner_step);
    }

    fn abort_flag(&self) -> AbortFlag {
        self.inner.abort_flag()
    }

    fn cache_stats(&self) -> CacheStats {
        self.inner.cache_stats()
    }

    fn pin_compile_base(&self, _theta: &RVector) {
        // Deliberately dropped: the deployed pin keeps serving.
    }

    fn pinned_theta(&self) -> Option<RVector> {
        None
    }
}

fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn hex_csv(vs: impl Iterator<Item = f64>) -> String {
    vs.map(hex_f64).collect::<Vec<_>>().join(",")
}

fn parse_hex_csv(s: &str, expected: usize) -> Option<Vec<f64>> {
    let vals: Option<Vec<f64>> = s.split(',').map(parse_hex_f64).collect();
    let vals = vals?;
    (vals.len() == expected).then_some(vals)
}

fn encode_record(rec: &CycleRecord) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {}",
        rec.cycle,
        rec.base_step,
        rec.next_step,
        u8::from(rec.promoted),
        hex_f64(rec.p_value),
        hex_f64(rec.baseline_loss),
        hex_f64(rec.shadow_loss),
        rec.shadow_epochs,
        hex_csv(rec.theta.iter().copied()),
        hex_csv(rec.errors.to_flat().into_iter()),
    )
}

fn decode_record(
    payload: &str,
    theta_len: usize,
    n_bs: usize,
    n_ps: usize,
) -> Option<CycleRecord> {
    let mut it = payload.split_ascii_whitespace();
    let cycle = it.next()?.parse().ok()?;
    let base_step = it.next()?.parse().ok()?;
    let next_step = it.next()?.parse().ok()?;
    let promoted = match it.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let p_value = parse_hex_f64(it.next()?)?;
    let baseline_loss = parse_hex_f64(it.next()?)?;
    let shadow_loss = parse_hex_f64(it.next()?)?;
    let shadow_epochs = it.next()?.parse().ok()?;
    let theta = RVector::from_vec(parse_hex_csv(it.next()?, theta_len)?);
    let flat = parse_hex_csv(it.next()?, n_bs + 2 * n_ps)?;
    let errors = ErrorVector::from_flat(n_bs, n_ps, &flat).ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(CycleRecord {
        cycle,
        base_step,
        next_step,
        promoted,
        p_value,
        baseline_loss,
        shadow_loss,
        shadow_epochs,
        theta,
        errors,
    })
}

fn wal_header(root_seed: u64, theta_len: usize, n_bs: usize, n_ps: usize) -> String {
    format!("{WAL_MAGIC} seed {root_seed} theta {theta_len} bs {n_bs} ps {n_ps}\n")
}

/// Appends one CRC-framed record and flushes it to disk — the commit
/// point of a cycle. Must happen *before* the chip is re-pinned.
fn append_record(file: &mut fs::File, rec: &CycleRecord) -> io::Result<()> {
    let payload = encode_record(rec);
    let mut frame = format!("rec {} {}\n", payload.len(), crc32(payload.as_bytes()));
    frame.push_str(&payload);
    frame.push('\n');
    file.write_all(frame.as_bytes())?;
    file.sync_data()
}

/// Replays the write-ahead journal: verifies the header against the
/// caller's identity, parses CRC-framed records, and truncates any torn
/// tail (a record whose frame, payload, or checksum is incomplete — the
/// signature of a kill mid-append) back to the last intact record.
fn replay_wal(
    path: &Path,
    root_seed: u64,
    theta_len: usize,
    n_bs: usize,
    n_ps: usize,
) -> Result<Vec<CycleRecord>, OnlineError> {
    let text = fs::read_to_string(path)?;
    let expected_header = wal_header(root_seed, theta_len, n_bs, n_ps);
    let Some(rest) = text.strip_prefix(&expected_header) else {
        let got = text.lines().next().unwrap_or("");
        return Err(OnlineError::Wal(format!(
            "header mismatch: expected {:?}, found {got:?}",
            expected_header.trim_end()
        )));
    };
    let mut records = Vec::new();
    let mut valid = expected_header.len();
    let mut cursor = rest;
    while let Some(line_end) = cursor.find('\n') {
        let frame = &cursor[..line_end];
        let body = &cursor[line_end + 1..];
        let parsed = (|| {
            let mut it = frame.split_ascii_whitespace();
            if it.next()? != "rec" {
                return None;
            }
            let len: usize = it.next()?.parse().ok()?;
            let crc: u32 = it.next()?.parse().ok()?;
            if it.next().is_some() || body.len() < len + 1 {
                return None;
            }
            let payload = &body[..len];
            if body.as_bytes()[len] != b'\n' || crc32(payload.as_bytes()) != crc {
                return None;
            }
            let rec = decode_record(payload, theta_len, n_bs, n_ps)?;
            if rec.cycle != records.len() as u64 + 1 {
                return None;
            }
            Some((rec, line_end + 1 + len + 1))
        })();
        match parsed {
            Some((rec, consumed)) => {
                records.push(rec);
                valid += consumed;
                cursor = &cursor[consumed..];
            }
            None => break,
        }
    }
    if valid < text.len() {
        // Torn tail: truncate so the next append starts at a clean frame.
        fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(valid as u64)?;
    }
    Ok(records)
}

fn has_entries(path: &Path) -> bool {
    path.exists()
        && RunJournal::replay(path)
            .map(|r| !r.entries.is_empty())
            .unwrap_or(false)
}

/// Runs (or resumes) the online recalibration loop on a live chip.
///
/// The chip keeps serving `initial_theta` (pinned at each cycle's base
/// step) while each cycle probes, shadow-trains, canaries, and then
/// atomically promotes or rolls back — see the module docs for the state
/// machine. `initial_errors` seeds the first probe sweep's warm start
/// (use [`ErrorVector::zeros`] for a cold start).
///
/// **Idempotent**: all controller state lives in `dir/`[`ONLINE_WAL`]
/// plus per-cycle shadow journals. If the directory already holds a
/// journal from an earlier (possibly killed) invocation with the same
/// identity, completed cycles are replayed from it and the loop continues
/// where it left off — bitwise identically to a run that was never
/// interrupted, because chip drift replays by step, every RNG stream is
/// derived per cycle, and the commit record (not the chip pin) is the
/// source of truth for the deployment.
///
/// # Errors
///
/// See [`OnlineError`].
#[allow(clippy::too_many_arguments)]
pub fn run_online<C: OnnChip>(
    chip: &C,
    train: &Dataset,
    test: &Dataset,
    head: ClassificationHead,
    initial_theta: &RVector,
    initial_errors: &ErrorVector,
    opts: &OnlineOptions,
    dir: &Path,
) -> Result<OnlineOutcome, OnlineError> {
    fs::create_dir_all(dir)?;
    let (n_bs, n_ps) = chip.architecture().error_slots();
    let theta_len = initial_theta.len();
    let wal_path = dir.join(ONLINE_WAL);

    let records = if wal_path.exists() {
        replay_wal(&wal_path, opts.root_seed, theta_len, n_bs, n_ps)?
    } else {
        fs::write(&wal_path, wal_header(opts.root_seed, theta_len, n_bs, n_ps))?;
        Vec::new()
    };
    let mut wal = fs::OpenOptions::new().append(true).open(&wal_path)?;

    let mut deployed = records
        .last()
        .map_or_else(|| initial_theta.clone(), |r| r.theta.clone());
    let mut prior = records
        .last()
        .map_or_else(|| initial_errors.clone(), |r| r.errors.clone());
    let mut base = records.last().map_or(1, |r| r.next_step);
    let start_cycle = records.last().map_or(1, |r| r.cycle + 1);
    let mut records = records;

    let pool = ExecPool::with_threads(opts.shadow.threads);
    for cycle in start_cycle..=opts.cycles as u64 {
        let rec = run_cycle(
            chip, train, test, head, &deployed, &prior, opts, dir, cycle, base, &pool,
        )?;
        // Commit order is the atomicity protocol: journal first (fsync'd),
        // re-pin second. A kill between the two resumes from the record —
        // the new deployment — and a kill before the append resumes from
        // the previous record: never a torn mix.
        append_record(&mut wal, &rec)?;
        if rec.promoted {
            chip.advance_to(rec.next_step);
            chip.pin_compile_base(&rec.theta);
        }
        deployed = rec.theta.clone();
        prior = rec.errors.clone();
        base = rec.next_step;
        records.push(rec);
    }

    // Make the live pin reflect the committed deployment even when every
    // cycle was replayed from the journal (fresh process after a kill).
    chip.advance_to(base);
    chip.pin_compile_base(&deployed);
    let final_eval = evaluate_chip_pooled(chip, test, &head, &deployed, &pool);
    let promotions = records.iter().filter(|r| r.promoted).count() as u64;
    Ok(OnlineOutcome {
        promotions,
        rollbacks: records.len() as u64 - promotions,
        cycles: records,
        deployed,
        errors: prior,
        final_eval,
    })
}

/// One Serve → Probe → Shadow-finetune → Canary cycle; pure up to chip
/// drift (which replays by step) and the cycle's derived RNG streams.
#[allow(clippy::too_many_arguments)]
fn run_cycle<C: OnnChip>(
    chip: &C,
    train: &Dataset,
    test: &Dataset,
    head: ClassificationHead,
    deployed: &RVector,
    prior: &ErrorVector,
    opts: &OnlineOptions,
    dir: &Path,
    cycle: u64,
    base: u64,
    pool: &ExecPool,
) -> Result<CycleRecord, OnlineError> {
    // Serve: move drift to the cycle's base step and (re-)pin the
    // deployment — both serial control points.
    chip.advance_to(base);
    chip.pin_compile_base(deployed);

    // Probe: a calibration sweep against the live, drifted chip,
    // warm-started from the previous cycle's error estimate.
    let mut probe_rng = StdRng::seed_from_u64(stream(opts.root_seed, PROBE_TAG, cycle));
    let recal = recalibrate(chip, prior, &opts.probe, &mut probe_rng)?;

    // Shadow fine-tune: a durable run from the *deployed* theta against
    // the freshly calibrated model, its steps offset past `base`.
    let stepped = SteppedChip::new(chip, base);
    let trainer = Trainer::new(&stepped, train, test, head)
        .with_calibrated_model(recal.model.clone());
    let shadow_path = dir.join(format!("shadow-{cycle}.journal"));
    let shadow_seed = stream(opts.root_seed, SHADOW_TAG, cycle);
    let mut dopts = DurableOptions::new(&shadow_path, shadow_seed);
    if let Some(w) = opts.watchdog {
        dopts = dopts.with_watchdog(w);
    }
    if let Some(b) = opts.epoch_budget {
        dopts = dopts.with_epoch_budget(b);
    }
    // A journal with committed epochs resumes; an absent or empty one
    // restarts from the deployed theta (an empty journal cannot
    // reconstruct the from-theta start — the deployed theta in our own
    // write-ahead state is the authority; see `train_durable_from`).
    let mut outcome = if has_entries(&shadow_path) {
        trainer.resume(&opts.shadow, &dopts)?
    } else {
        trainer.train_durable_from(opts.shadow_method, &opts.shadow, &dopts, deployed)?
    };
    let shadow: TrainOutcome = loop {
        match outcome {
            RunOutcome::Completed(out) => break out,
            RunOutcome::Aborted {
                resumable: true, ..
            } => outcome = trainer.resume(&opts.shadow, &dopts)?,
            RunOutcome::Aborted { reason, .. } => {
                return Err(OnlineError::ShadowAborted(format!("{reason:?}")))
            }
        }
    };

    // Canary: a seeded traffic slice, per-sample losses for both thetas
    // on the *same* chip state, gated by Mann-Whitney.
    //
    // The canary step derives from the shadow journal's final committed
    // iteration, NOT from runtime `advance_to` observation: a resume
    // that replays an already-complete shadow journal runs zero fresh
    // iterations, and the canary must land on the same drift step either
    // way for bitwise resume.
    let final_iter = RunJournal::replay(&shadow_path)
        .map_err(|e| OnlineError::Wal(format!("shadow journal re-read: {e}")))?
        .entries
        .last()
        .map_or(0, |e| e.state.iteration as u64);
    let canary_step = base + final_iter + 1;
    chip.advance_to(canary_step);
    let mut canary_rng = StdRng::seed_from_u64(stream(opts.root_seed, CANARY_TAG, cycle));
    // Each canary request is a microbatch, like real inference traffic:
    // one observation per request (its mean loss), drawn over distinct
    // test samples (partial Fisher-Yates).
    let group = opts.canary_batch.max(1);
    let n = (opts.canary_samples.max(1) * group).min(test.len());
    let mut idx: Vec<usize> = (0..test.len()).collect();
    for k in 0..n {
        let j = canary_rng.gen_range(k..idx.len());
        idx.swap(k, j);
    }
    idx.truncate(n);
    let baseline_losses: Vec<f64> = idx
        .chunks(group)
        .map(|c| chip_batch_loss_pooled(chip, test, c, &head, deployed, pool))
        .collect();
    let shadow_losses: Vec<f64> = idx
        .chunks(group)
        .map(|c| chip_batch_loss_pooled(chip, test, c, &head, &shadow.theta, pool))
        .collect();
    let mw = mann_whitney_u(&shadow_losses, &baseline_losses);
    let baseline_loss = baseline_losses.iter().sum::<f64>() / baseline_losses.len() as f64;
    let shadow_loss = shadow_losses.iter().sum::<f64>() / shadow_losses.len() as f64;
    let promoted = mw.p_value < opts.alpha && shadow_loss < baseline_loss;

    opts.trace.emit(|| TraceEvent::CanaryVerdict {
        cycle,
        samples: n as u64,
        baseline_loss,
        shadow_loss,
        p_value: mw.p_value,
        promote: promoted,
    });
    let shadow_epochs = shadow.history.len() as u64;
    if promoted {
        opts.trace.emit(|| TraceEvent::Promotion {
            cycle,
            step: canary_step,
            shadow_epochs,
            shadow_loss,
        });
    } else {
        opts.trace.emit(|| TraceEvent::ShadowRollback {
            cycle,
            step: canary_step,
            reason: "canary_not_better".to_string(),
        });
    }

    Ok(CycleRecord {
        cycle,
        base_step: base,
        next_step: canary_step + 1,
        promoted,
        p_value: mw.p_value,
        baseline_loss,
        shadow_loss,
        shadow_epochs,
        theta: if promoted {
            shadow.theta
        } else {
            deployed.clone()
        },
        errors: recal.errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, promoted: bool) -> CycleRecord {
        CycleRecord {
            cycle,
            base_step: 1 + (cycle - 1) * 10,
            next_step: 1 + cycle * 10,
            promoted,
            p_value: 0.01 * cycle as f64,
            baseline_loss: 0.5,
            shadow_loss: 0.25,
            shadow_epochs: 3,
            theta: RVector::from_vec(vec![0.1 * cycle as f64, -0.2, f64::consts_hack()]),
            errors: ErrorVector::from_flat(2, 1, &[0.01, -0.02, 0.03, f64::NAN]).unwrap(),
        }
    }

    // A non-trivial bit pattern (negative zero) to catch lossy encodings.
    trait ConstsHack {
        fn consts_hack() -> f64;
    }
    impl ConstsHack for f64 {
        fn consts_hack() -> f64 {
            -0.0
        }
    }

    #[test]
    fn wal_records_roundtrip_bitwise_including_nan() {
        for promoted in [false, true] {
            let r = rec(1, promoted);
            let payload = encode_record(&r);
            let back = decode_record(&payload, 3, 2, 1).expect("decode");
            assert_eq!(back.cycle, r.cycle);
            assert_eq!(back.promoted, r.promoted);
            let bits = |v: &RVector| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&back.theta), bits(&r.theta), "theta must survive bitwise");
            let ebits =
                |e: &ErrorVector| e.to_flat().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(ebits(&back.errors), ebits(&r.errors), "NaN error slot too");
            assert_eq!(back.p_value.to_bits(), r.p_value.to_bits());
        }
    }

    #[test]
    fn wal_replay_truncates_torn_tail_to_last_intact_record() {
        let dir = std::env::temp_dir().join(format!("photon-online-wal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(ONLINE_WAL);
        fs::write(&path, wal_header(7, 3, 2, 1)).unwrap();
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        append_record(&mut f, &rec(1, true)).unwrap();
        append_record(&mut f, &rec(2, false)).unwrap();
        let clean_len = fs::metadata(&path).unwrap().len();
        // A kill mid-append leaves a frame line without its full payload.
        f.write_all(b"rec 500 12345\npartial").unwrap();
        drop(f);

        let records = replay_wal(&path, 7, 3, 2, 1).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].cycle, 1);
        assert!(records[0].promoted);
        assert!(!records[1].promoted);
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            clean_len,
            "torn tail must be truncated"
        );
        // Wrong identity is an error, not a silent restart.
        assert!(replay_wal(&path, 8, 3, 2, 1).is_err());
        assert!(replay_wal(&path, 7, 4, 2, 1).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stepped_chip_offsets_steps_and_swallows_pins() {
        use photon_photonics::{ErrorModel, FabricatedChip};
        let mut rng = StdRng::seed_from_u64(3);
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let theta = chip.init_params(&mut rng);
        chip.pin_compile_base(&theta);

        let stepped = SteppedChip::new(&chip, 100);
        stepped.advance_to(3);
        stepped.advance_to(7);
        assert_eq!(stepped.max_step(), 107);
        // The deployed pin survives the trainer's per-iteration pin hints.
        let other = RVector::zeros(theta.len());
        stepped.pin_compile_base(&other);
        assert_eq!(chip.pinned_theta().unwrap(), theta);
        assert!(stepped.pinned_theta().is_none());
    }
}
