//! Serving-resilience building blocks: rolling outcome windows, per-replica
//! circuit breakers, brownout tier control, hedge-delay tracking, and
//! idempotent completion dedup.
//!
//! Everything in this module is pure bookkeeping over **virtual-nanosecond**
//! timestamps supplied by the caller — no clocks, no threads, no I/O — so a
//! resilience decision (trip a breaker, hedge a dispatch, step down a tier)
//! is a pure function of the event history, and a replica-failure chaos
//! scenario replays byte-identically at any `PHOTON_THREADS`. The
//! discrete-event simulator (`photon-sim`) wires these pieces into its
//! event loop; `DESIGN.md` ("Serving resilience") has the full state
//! machines.
//!
//! ```text
//!            failures ≥ open_after                cooldown_ns elapses
//! Closed ───────────────────────────▶ Open ──────────────────────────▶ HalfOpen
//!   ▲                                  ▲                                  │
//!   │    half_open_successes probes    │        any probe failure         │
//!   └──────────────────────────────────┼──────────────────────────────────┤
//!                                      └──────────────────────────────────┘
//! ```

use std::collections::VecDeque;
use std::fmt;

use photon_core::percentiles;
use photon_photonics::ServingTier;

/// A bounded rolling window of boolean outcomes (`true` = success) with a
/// consecutive-success streak — the shared window math behind both the
/// farm's [`HealthMonitor`](crate::HealthMonitor) and the serving layer's
/// [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct RollingWindow {
    cap: usize,
    window: VecDeque<bool>,
    ok_streak: u32,
}

impl RollingWindow {
    /// An empty window holding at most `cap` outcomes (`cap` is clamped to
    /// at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RollingWindow {
            cap,
            window: VecDeque::with_capacity(cap),
            ok_streak: 0,
        }
    }

    /// Records one outcome, evicting the oldest once the window is full.
    pub fn push(&mut self, ok: bool) {
        self.window.push_back(ok);
        while self.window.len() > self.cap {
            self.window.pop_front();
        }
        self.ok_streak = if ok { self.ok_streak.saturating_add(1) } else { 0 };
    }

    /// Failures currently inside the window.
    pub fn failures(&self) -> u32 {
        self.window.iter().filter(|&&b| !b).count() as u32
    }

    /// Consecutive successes ending at the newest outcome (counted across
    /// evictions: the streak is about *recent history*, not window
    /// contents).
    pub fn ok_streak(&self) -> u32 {
        self.ok_streak
    }

    /// Outcomes currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no outcomes are held.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Wipes the window *and* the streak — the fresh-slate reset both
    /// state machines apply on recovery, so pre-recovery failures can
    /// never count toward a fresh degradation.
    pub fn clear(&mut self) {
        self.window.clear();
        self.ok_streak = 0;
    }
}

/// Where a replica's circuit breaker sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Dispatching normally; outcomes feed the rolling window.
    Closed,
    /// Tripped: no dispatches until the virtual-time cooldown expires.
    Open,
    /// Cooldown expired: serial probe dispatches test the replica.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case label used in reports and trace events.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Thresholds driving one replica's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Rolling window length, in dispatch outcomes.
    pub window: usize,
    /// Failures inside the window that trip `Closed → Open`.
    pub open_after: u32,
    /// Virtual nanoseconds an open breaker holds before probing.
    pub cooldown_ns: u64,
    /// Consecutive successful half-open probes that re-close the breaker.
    pub half_open_successes: u32,
}

impl BreakerPolicy {
    /// The default breaker: window of 8 dispatches, trip at 3 failures,
    /// 2 ms cooldown, 2 clean probes to re-close.
    pub fn standard() -> Self {
        BreakerPolicy {
            window: 8,
            open_after: 3,
            cooldown_ns: 2_000_000,
            half_open_successes: 2,
        }
    }

    /// Overrides the cooldown.
    #[must_use]
    pub fn with_cooldown_ns(mut self, ns: u64) -> Self {
        self.cooldown_ns = ns;
        self
    }

    /// A breaker that never trips — the "no-resilience" control arm for
    /// chaos comparisons.
    pub fn disabled() -> Self {
        BreakerPolicy {
            open_after: u32::MAX,
            ..BreakerPolicy::standard()
        }
    }
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy::standard()
    }
}

/// One breaker state change, stamped in virtual time — the deterministic
/// audit trail the chaos test asserts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// Virtual time of the transition.
    pub at_ns: u64,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// Per-replica circuit breaker over dispatch outcomes.
///
/// Driven entirely by the caller's virtual clock: [`allow`](Self::allow)
/// gates dispatch, [`record_success`](Self::record_success) /
/// [`record_failure`](Self::record_failure) feed completions and watchdog
/// timeouts back in. Half-open probes are *serial*: one probe dispatch at a
/// time, so a flapping replica cannot absorb a burst of real traffic while
/// being tested.
#[derive(Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    window: RollingWindow,
    state: BreakerState,
    open_until_ns: u64,
    probe_inflight: bool,
    probe_successes: u32,
    transitions: Vec<BreakerTransition>,
}

impl CircuitBreaker {
    /// A fresh, closed breaker.
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            window: RollingWindow::new(policy.window),
            state: BreakerState::Closed,
            open_until_ns: 0,
            probe_inflight: false,
            probe_successes: 0,
            transitions: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The transition log, oldest first.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    fn transition(&mut self, at_ns: u64, to: BreakerState) {
        let from = self.state;
        if from == to {
            return;
        }
        self.state = to;
        self.transitions.push(BreakerTransition { at_ns, from, to });
    }

    /// Whether a new dispatch may go to this replica at `now_ns`. An open
    /// breaker whose cooldown has expired transitions to `HalfOpen` here
    /// and admits the first probe; a half-open breaker admits one probe at
    /// a time.
    pub fn allow(&mut self, now_ns: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_ns >= self.open_until_ns {
                    self.transition(now_ns, BreakerState::HalfOpen);
                    self.probe_successes = 0;
                    self.probe_inflight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    false
                } else {
                    self.probe_inflight = true;
                    true
                }
            }
        }
    }

    /// Whether [`allow`](Self::allow) *would* admit a dispatch at `now_ns`,
    /// without consuming the half-open probe slot or transitioning state.
    /// Lets a scheduler scan candidate replicas and spend `allow` only on
    /// the one it actually picks.
    pub fn would_allow(&self, now_ns: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => now_ns >= self.open_until_ns,
            BreakerState::HalfOpen => !self.probe_inflight,
        }
    }

    /// If the breaker is open, the virtual time [`allow`](Self::allow)
    /// would start admitting probes — the wake-up an event-driven caller
    /// arms. `None` when dispatchable now (or permanently tripped).
    pub fn wake_at_ns(&self) -> Option<u64> {
        (self.state == BreakerState::Open && self.open_until_ns < u64::MAX)
            .then_some(self.open_until_ns)
    }

    /// Feeds one successful dispatch completion back.
    pub fn record_success(&mut self, now_ns: u64) {
        match self.state {
            BreakerState::Closed => self.window.push(true),
            BreakerState::HalfOpen => {
                self.probe_inflight = false;
                self.probe_successes += 1;
                if self.probe_successes >= self.policy.half_open_successes {
                    // Fresh slate: pre-trip failures no longer count.
                    self.window.clear();
                    self.transition(now_ns, BreakerState::Closed);
                }
            }
            // A completion racing in after the trip (e.g. a slow dispatch
            // from the closed era): the trip decision stands.
            BreakerState::Open => {}
        }
    }

    /// Feeds one failed dispatch (watchdog timeout, poisoned read) back.
    pub fn record_failure(&mut self, now_ns: u64) {
        match self.state {
            BreakerState::Closed => {
                self.window.push(false);
                if self.window.failures() >= self.policy.open_after {
                    self.trip(now_ns);
                }
            }
            BreakerState::HalfOpen => {
                self.probe_inflight = false;
                self.probe_successes = 0;
                self.trip(now_ns);
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_ns: u64) {
        self.open_until_ns = now_ns.saturating_add(self.policy.cooldown_ns);
        self.transition(now_ns, BreakerState::Open);
    }

    /// Trips the breaker permanently (replica confirmed dead): it never
    /// half-opens again.
    pub fn force_open_forever(&mut self, now_ns: u64) {
        self.open_until_ns = u64::MAX;
        self.probe_inflight = false;
        self.transition(now_ns, BreakerState::Open);
    }
}

/// Hysteresis thresholds for the brownout tier ladder, in queued requests
/// per live replica.
///
/// `enter[i]` steps *down* onto rung `i + 1` of
/// `f64 → f32 → i16 → shed`; `exit[i]` steps back *up* off it. Requiring
/// `exit[i] < enter[i]` is what prevents tier flapping when the queue
/// depth hovers at a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutPolicy {
    /// Depth at which rung `i + 1` engages (ascending).
    pub enter: [usize; 3],
    /// Depth at which rung `i + 1` disengages (strictly below `enter[i]`).
    pub exit: [usize; 3],
}

impl BrownoutPolicy {
    /// The default ladder: f32 at depth 16, i16 at 48, shed at 128, each
    /// releasing at half its engage depth.
    pub fn standard() -> Self {
        BrownoutPolicy {
            enter: [16, 48, 128],
            exit: [8, 24, 64],
        }
    }

    /// Thresholds no realistic queue ever reaches — brownout effectively
    /// off, the "no-resilience" control arm for chaos comparisons.
    pub fn disabled() -> Self {
        BrownoutPolicy {
            enter: [usize::MAX - 2, usize::MAX - 1, usize::MAX],
            exit: [usize::MAX / 2, usize::MAX / 2 + 1, usize::MAX / 2 + 2],
        }
    }

    /// Validates the hysteresis invariants.
    ///
    /// # Panics
    ///
    /// Panics when `enter` is not strictly ascending or any
    /// `exit[i] >= enter[i]`.
    pub fn validated(self) -> Self {
        assert!(
            self.enter[0] < self.enter[1] && self.enter[1] < self.enter[2],
            "brownout enter thresholds must ascend: {:?}",
            self.enter
        );
        for i in 0..3 {
            assert!(
                self.exit[i] < self.enter[i],
                "brownout exit[{i}] {} must sit below enter[{i}] {} (hysteresis)",
                self.exit[i],
                self.enter[i]
            );
        }
        self
    }
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        BrownoutPolicy::standard()
    }
}

/// One brownout rung change, stamped in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierTransition {
    /// Virtual time of the change.
    pub at_ns: u64,
    /// Rung before (0 = f64 … 3 = shed).
    pub from_rung: u8,
    /// Rung after.
    pub to_rung: u8,
}

/// Stable label for a brownout rung (rung 3 is the shed rung below the
/// precision tiers).
pub fn rung_label(rung: u8) -> &'static str {
    match rung {
        0 => "f64",
        1 => "f32",
        2 => "i16",
        _ => "shed",
    }
}

/// Per-replica load-shedding controller walking the evaluation-tier
/// ladder `f64 → f32 → i16 → shed` as queue depth crosses the hysteresis
/// thresholds — degrading precision before dropping traffic.
#[derive(Debug)]
pub struct BrownoutController {
    policy: BrownoutPolicy,
    rung: usize,
    transitions: Vec<TierTransition>,
    served: [u64; 3],
}

impl BrownoutController {
    /// A fresh controller at full precision.
    ///
    /// # Panics
    ///
    /// Panics when `policy` violates the hysteresis invariants (see
    /// [`BrownoutPolicy::validated`]).
    pub fn new(policy: BrownoutPolicy) -> Self {
        BrownoutController {
            policy: policy.validated(),
            rung: 0,
            transitions: Vec::new(),
            served: [0; 3],
        }
    }

    /// Observes the current queue depth (per live replica) at `now_ns` and
    /// returns the tier to serve at — `None` on the shed rung, where new
    /// arrivals are rejected at admission (queued work still drains at
    /// `i16`).
    pub fn observe(&mut self, now_ns: u64, depth: usize) -> Option<ServingTier> {
        let mut rung = self.rung;
        while rung < 3 && depth >= self.policy.enter[rung] {
            rung += 1;
        }
        while rung > 0 && depth <= self.policy.exit[rung - 1] {
            rung -= 1;
        }
        if rung != self.rung {
            self.transitions.push(TierTransition {
                at_ns: now_ns,
                from_rung: self.rung as u8,
                to_rung: rung as u8,
            });
            self.rung = rung;
        }
        self.current()
    }

    /// The tier the controller currently serves at (`None` = shed rung;
    /// queued work drains at the deepest precision tier).
    pub fn current(&self) -> Option<ServingTier> {
        ServingTier::from_rung(self.rung.min(2)).filter(|_| self.rung < 3)
    }

    /// The precision tier queued work drains at — `I16` while on the shed
    /// rung (shedding gates *admission*, not the drain).
    pub fn drain_tier(&self) -> ServingTier {
        ServingTier::from_rung(self.rung.min(2)).unwrap_or(ServingTier::I16)
    }

    /// Whether new arrivals should be shed right now.
    pub fn shedding(&self) -> bool {
        self.rung == 3
    }

    /// Credits `n` requests served at `tier`.
    pub fn record_served(&mut self, tier: ServingTier, n: u64) {
        self.served[tier.rung()] += n;
    }

    /// Requests served per precision tier, ladder order.
    pub fn served(&self) -> [u64; 3] {
        self.served
    }

    /// The rung-transition log, oldest first.
    pub fn transitions(&self) -> &[TierTransition] {
        &self.transitions
    }
}

/// How hedged re-dispatch picks its trigger delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Latency quantile the hedge delay tracks (0.99 = hedge once a
    /// dispatch outlives the tenant's observed p99).
    pub quantile: f64,
    /// Floor on the hedge delay, and the delay used until a tenant has
    /// [`min_samples`](Self::min_samples) completions (the *seed* delay).
    pub min_delay_ns: u64,
    /// Completion latencies retained per tenant.
    pub window: usize,
    /// Completions a tenant needs before its own quantile takes over from
    /// the seed delay.
    pub min_samples: usize,
}

impl HedgePolicy {
    /// The default policy: hedge at the rolling per-tenant p99 over the
    /// last 256 completions, floored at 200 µs.
    pub fn standard() -> Self {
        HedgePolicy {
            quantile: 0.99,
            min_delay_ns: 200_000,
            window: 256,
            min_samples: 16,
        }
    }
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy::standard()
    }
}

/// Rolling per-tenant completion latencies feeding the p99-derived hedge
/// delay. Deterministic: the delay is a pure function of the completion
/// history, and the seed delay covers the cold start.
#[derive(Debug)]
pub struct HedgeDelayTracker {
    policy: HedgePolicy,
    samples: Vec<VecDeque<f64>>,
    scratch: Vec<f64>,
}

impl HedgeDelayTracker {
    /// A tracker for `tenants` tenants.
    ///
    /// # Panics
    ///
    /// Panics on a quantile outside `(0, 1)` or a zero window.
    pub fn new(policy: HedgePolicy, tenants: usize) -> Self {
        assert!(
            policy.quantile > 0.0 && policy.quantile < 1.0,
            "hedge quantile {} must lie in (0, 1)",
            policy.quantile
        );
        assert!(policy.window >= 1, "hedge window must hold at least 1 sample");
        HedgeDelayTracker {
            policy,
            samples: (0..tenants).map(|_| VecDeque::with_capacity(policy.window)).collect(),
            scratch: Vec::with_capacity(policy.window),
        }
    }

    /// The policy this tracker was built with.
    pub fn policy(&self) -> HedgePolicy {
        self.policy
    }

    /// Records one completion latency for `tenant`.
    pub fn record(&mut self, tenant: usize, latency_ns: f64) {
        let w = &mut self.samples[tenant];
        w.push_back(latency_ns);
        while w.len() > self.policy.window {
            w.pop_front();
        }
    }

    /// The hedge delay for `tenant`: the rolling quantile of its recent
    /// completion latencies, floored at the policy minimum; the seed delay
    /// until enough samples exist.
    pub fn delay_ns(&mut self, tenant: usize) -> u64 {
        let w = &self.samples[tenant];
        if w.len() < self.policy.min_samples.max(1) {
            return self.policy.min_delay_ns;
        }
        self.scratch.clear();
        self.scratch.extend(w.iter().copied());
        let q = percentiles(&self.scratch, &[self.policy.quantile])[0];
        if q.is_finite() {
            (q as u64).max(self.policy.min_delay_ns)
        } else {
            self.policy.min_delay_ns
        }
    }
}

/// Idempotent completion dedup for hedged serving.
///
/// Every request id is marked served exactly once; the duplicate
/// completion a hedge race produces is a no-op on tenant counters and
/// latency samples, and its chip spend is what the ledger attributes to
/// `QueryCategory::Hedge`. Ids are dense (assigned sequentially by the
/// simulator), so the ledger is a plain bitset.
#[derive(Debug, Default)]
pub struct DedupLedger {
    bits: Vec<u64>,
    served: u64,
    duplicates: u64,
}

impl DedupLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        DedupLedger::default()
    }

    /// Marks `id` served. Returns `true` the first time — the completion
    /// that counts — and `false` for every duplicate (which is tallied).
    pub fn mark_served(&mut self, id: u64) -> bool {
        let (word, bit) = ((id / 64) as usize, id % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        if self.bits[word] & (1 << bit) != 0 {
            self.duplicates += 1;
            return false;
        }
        self.bits[word] |= 1 << bit;
        self.served += 1;
        true
    }

    /// Whether `id` has been served.
    pub fn is_served(&self, id: u64) -> bool {
        let (word, bit) = ((id / 64) as usize, id % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Distinct requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Duplicate completions observed (each was a no-op).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_window_wraps_old_outcomes_out() {
        let mut w = RollingWindow::new(3);
        w.push(false);
        w.push(false);
        assert_eq!(w.failures(), 2);
        assert_eq!(w.len(), 2);
        // Two more pushes evict the first failure...
        w.push(true);
        w.push(true);
        assert_eq!(w.len(), 3);
        assert_eq!(w.failures(), 1, "oldest failure slid out of the window");
        // ...and one more clears the window of failures entirely.
        w.push(true);
        assert_eq!(w.failures(), 0);
        assert_eq!(w.ok_streak(), 3);
    }

    #[test]
    fn rolling_window_streak_resets_on_failure_and_on_clear() {
        let mut w = RollingWindow::new(4);
        w.push(true);
        w.push(true);
        assert_eq!(w.ok_streak(), 2);
        w.push(false);
        assert_eq!(w.ok_streak(), 0, "a failure resets the streak");
        w.push(true);
        assert_eq!(w.ok_streak(), 1);
        w.clear();
        assert_eq!((w.len(), w.ok_streak(), w.failures()), (0, 0, 0));
        assert!(w.is_empty());
        // The streak survives evictions: window cap 4, push 6 successes.
        for _ in 0..6 {
            w.push(true);
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.ok_streak(), 6, "streak counts recent history, not window contents");
    }

    #[test]
    fn zero_cap_window_is_clamped_not_panicking() {
        let mut w = RollingWindow::new(0);
        w.push(false);
        assert_eq!(w.len(), 1);
        assert_eq!(w.failures(), 1);
    }

    fn quick_breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerPolicy {
            window: 4,
            open_after: 2,
            cooldown_ns: 1_000,
            half_open_successes: 2,
        })
    }

    #[test]
    fn breaker_trips_cools_probes_and_recloses_at_deterministic_times() {
        let mut b = quick_breaker();
        assert!(b.allow(0));
        b.record_failure(10);
        assert_eq!(b.state(), BreakerState::Closed, "one failure is tolerated");
        b.record_failure(20);
        assert_eq!(b.state(), BreakerState::Open, "second failure trips");
        assert!(!b.allow(20));
        assert!(!b.allow(1_019));
        assert_eq!(b.wake_at_ns(), Some(1_020));
        // Cooldown expires: the first allow() transitions to HalfOpen and
        // admits exactly one serial probe.
        assert!(b.allow(1_020));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(1_021), "probes are serial");
        b.record_success(1_500);
        assert!(b.allow(1_500), "next probe admitted after the first lands");
        b.record_success(2_000);
        assert_eq!(b.state(), BreakerState::Closed, "two clean probes re-close");
        // The audit trail is exact.
        assert_eq!(
            b.transitions(),
            &[
                BreakerTransition { at_ns: 20, from: BreakerState::Closed, to: BreakerState::Open },
                BreakerTransition {
                    at_ns: 1_020,
                    from: BreakerState::Open,
                    to: BreakerState::HalfOpen
                },
                BreakerTransition {
                    at_ns: 2_000,
                    from: BreakerState::HalfOpen,
                    to: BreakerState::Closed
                },
            ]
        );
        // Re-closing wiped the window: two fresh failures are needed to
        // trip again, not one.
        b.record_failure(2_100);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_with_a_fresh_cooldown() {
        let mut b = quick_breaker();
        b.record_failure(0);
        b.record_failure(0);
        assert!(b.allow(1_000), "cooldown expired at 1000");
        b.record_failure(1_200);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.wake_at_ns(), Some(2_200), "cooldown restarts from the probe failure");
        assert!(!b.allow(2_199));
        assert!(b.allow(2_200));
    }

    #[test]
    fn forced_open_never_half_opens() {
        let mut b = quick_breaker();
        b.force_open_forever(50);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.wake_at_ns(), None);
        assert!(!b.allow(u64::MAX - 1));
        // Late completions from before the kill are ignored.
        b.record_success(60);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn brownout_walks_the_ladder_with_hysteresis() {
        let mut c = BrownoutController::new(BrownoutPolicy {
            enter: [10, 20, 30],
            exit: [5, 12, 22],
        });
        assert_eq!(c.observe(0, 0), Some(ServingTier::F64));
        assert_eq!(c.observe(1, 9), Some(ServingTier::F64));
        assert_eq!(c.observe(2, 10), Some(ServingTier::F32), "enter[0] steps down");
        // Inside the hysteresis band nothing moves.
        assert_eq!(c.observe(3, 7), Some(ServingTier::F32));
        assert_eq!(c.observe(4, 5), Some(ServingTier::F64), "exit[0] steps back up");
        // A depth spike can walk several rungs at once.
        assert_eq!(c.observe(5, 35), None, "beyond enter[2] is the shed rung");
        assert!(c.shedding());
        assert_eq!(c.drain_tier(), ServingTier::I16, "queued work still drains at i16");
        assert_eq!(c.observe(6, 12), Some(ServingTier::F32), "recovery walks back up");
        assert_eq!(
            c.transitions().iter().map(|t| (t.at_ns, t.from_rung, t.to_rung)).collect::<Vec<_>>(),
            vec![(2, 0, 1), (4, 1, 0), (5, 0, 3), (6, 3, 1)]
        );
        c.record_served(ServingTier::F32, 7);
        c.record_served(ServingTier::I16, 2);
        assert_eq!(c.served(), [0, 7, 2]);
        assert_eq!(rung_label(0), "f64");
        assert_eq!(rung_label(3), "shed");
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn brownout_rejects_exit_at_or_above_enter() {
        let _ = BrownoutController::new(BrownoutPolicy {
            enter: [10, 20, 30],
            exit: [10, 12, 22],
        });
    }

    #[test]
    fn hedge_delay_uses_seed_until_warm_then_tracks_p99() {
        let mut t = HedgeDelayTracker::new(
            HedgePolicy {
                quantile: 0.99,
                min_delay_ns: 1_000,
                window: 100,
                min_samples: 10,
            },
            2,
        );
        assert_eq!(t.delay_ns(0), 1_000, "cold tenant uses the seed delay");
        for i in 1..=100u64 {
            t.record(0, i as f64 * 100.0);
        }
        let d = t.delay_ns(0);
        assert!(
            (9_000..=10_000).contains(&d),
            "p99 of 100..10_000 ns in hundreds should be ~9_901, got {d}"
        );
        // Tenant 1 is untouched by tenant 0's history.
        assert_eq!(t.delay_ns(1), 1_000);
        // The floor applies even when the quantile is tiny.
        let mut fast = HedgeDelayTracker::new(
            HedgePolicy {
                quantile: 0.5,
                min_delay_ns: 5_000,
                window: 8,
                min_samples: 1,
            },
            1,
        );
        fast.record(0, 10.0);
        assert_eq!(fast.delay_ns(0), 5_000);
    }

    #[test]
    fn dedup_ledger_is_idempotent() {
        let mut d = DedupLedger::new();
        assert!(d.mark_served(0));
        assert!(d.mark_served(130), "bitset grows across words");
        assert!(!d.mark_served(0), "duplicate is a no-op");
        assert!(!d.mark_served(130));
        assert!(d.is_served(130));
        assert!(!d.is_served(64));
        assert_eq!(d.served(), 2);
        assert_eq!(d.duplicates(), 2);
    }
}
