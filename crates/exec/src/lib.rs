//! Deterministic parallel execution engine for photon-zo hot loops.
//!
//! The crate provides [`ExecPool`], a scoped worker pool built on crossbeam
//! scoped threads, plus fixed-shape reductions ([`tree_sum`],
//! [`tree_reduce`]) whose floating-point result depends only on the number of
//! elements — never on thread count or scheduling order.
//!
//! # Design
//!
//! - **Index-ordered results.** `map`/`map_with` always return results in
//!   item order. Workers pull item indices from a shared atomic cursor
//!   (dynamic load balancing) but write into per-index slots, so the output
//!   is identical to the serial evaluation regardless of interleaving.
//! - **Serial fallback.** A pool of size 1 runs the exact same closure on the
//!   caller's thread with no synchronization: serial is not a special code
//!   path bolted on, it *is* the degenerate pool.
//! - **Per-thread scratch.** [`ExecPool::map_with`] gives every worker its
//!   own scratch value built by an `init` closure, so forward-pass buffers
//!   are reused across items without cross-thread sharing.
//! - **Sizing.** [`ExecPool::from_env`] honours the `PHOTON_THREADS`
//!   environment variable, falling back to `std::thread::available_parallelism`.
//!   [`ExecPool::with_threads`] lets a config field override both.

#![warn(missing_docs)]

mod guard;

pub use guard::{run_guarded, BackoffSchedule, WatchdogPolicy};

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Aggregate counters for one instrumented pool: how many map calls ran,
/// how many items they processed, and the worst observed load imbalance.
///
/// Counters are advisory telemetry — they use relaxed atomics and never
/// participate in the computation, so instrumented and uninstrumented pools
/// produce bitwise-identical results.
#[derive(Debug, Default)]
pub struct PoolMetrics {
    map_calls: AtomicU64,
    items: AtomicU64,
    peak_share_milli: AtomicU64,
}

/// A point-in-time copy of a pool's [`PoolMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// `map`/`map_with`/`map_subset` calls executed.
    pub map_calls: u64,
    /// Total items processed across all calls.
    pub items: u64,
    /// Worst per-call imbalance: the largest share (in 1/1000ths of that
    /// call's items) claimed by a single worker. 1000 means one worker
    /// processed every item — expected for serial pools and tiny inputs.
    pub peak_worker_share_milli: u64,
}

impl PoolMetrics {
    fn record_call(&self, items: u64, max_claimed: u64) {
        self.map_calls.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(items, Ordering::Relaxed);
        if let Some(share) = max_claimed.saturating_mul(1000).checked_div(items) {
            self.peak_share_milli.fetch_max(share, Ordering::Relaxed);
        }
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            map_calls: self.map_calls.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            peak_worker_share_milli: self.peak_share_milli.load(Ordering::Relaxed),
        }
    }
}

/// A sized worker pool executing independent items with deterministic,
/// index-ordered results.
///
/// The pool is a lightweight description (a thread count plus an optional
/// metrics handle): threads are scoped per call, so an `ExecPool` can be
/// freely stored in configs, cloned, and shared.
#[derive(Debug, Clone)]
pub struct ExecPool {
    threads: usize,
    metrics: Option<Arc<PoolMetrics>>,
}

/// Pools compare by configuration (thread count); metrics are telemetry,
/// not identity.
impl PartialEq for ExecPool {
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads
    }
}

impl Eq for ExecPool {}

impl Default for ExecPool {
    fn default() -> Self {
        ExecPool::from_env()
    }
}

impl ExecPool {
    /// Pool with exactly `threads` workers (clamped to at least 1).
    ///
    /// Pool construction also forces the process-wide SIMD kernel-tier
    /// detection (see [`photon_linalg::kernel_tier`]), so the dispatch
    /// decision is made once at pool startup rather than inside a hot loop,
    /// and [`ExecPool::kernel_tier`] is ready for trace reporting.
    pub fn new(threads: usize) -> Self {
        let _ = photon_linalg::kernel_tier();
        ExecPool {
            threads: threads.max(1),
            metrics: None,
        }
    }

    /// Single-threaded pool: every call runs inline on the caller's thread.
    pub fn serial() -> Self {
        ExecPool::new(1)
    }

    /// Attaches fresh [`PoolMetrics`] counters to this pool. Metrics are
    /// shared by clones of the instrumented pool; read them back with
    /// [`ExecPool::metrics`].
    pub fn instrumented(mut self) -> Self {
        self.metrics = Some(Arc::new(PoolMetrics::default()));
        self
    }

    /// The attached metrics, when [`ExecPool::instrumented`] was called.
    pub fn metrics(&self) -> Option<&PoolMetrics> {
        self.metrics.as_deref()
    }

    /// Pool sized from the environment: `PHOTON_THREADS` if set to a positive
    /// integer, otherwise `std::thread::available_parallelism()`.
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var("PHOTON_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return ExecPool::new(n);
                }
            }
        }
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecPool::new(n)
    }

    /// Pool sized from an optional config override, falling back to
    /// [`ExecPool::from_env`]. This is the constructor trainer configs use.
    pub fn with_threads(threads: Option<usize>) -> Self {
        match threads {
            Some(n) => ExecPool::new(n),
            None => ExecPool::from_env(),
        }
    }

    /// Number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Stable name of the SIMD kernel tier the f32 fast path dispatches to
    /// in this process (`"scalar"`, `"avx2-fma"`, or `"neon"`). Recorded in
    /// `TraceEvent::RunStart` so every run log states which kernel served it.
    pub fn kernel_tier(&self) -> &'static str {
        photon_linalg::kernel_tier().name()
    }

    /// `true` when the pool runs everything inline on the caller's thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Apply `f` to every item, returning results in item order.
    ///
    /// `f` receives `(index, &item)`. Results are index-ordered and therefore
    /// independent of scheduling; with a deterministic `f`, the output is
    /// bitwise identical for every pool size.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.map_with(items, || (), |(), i, item| f(i, item))
    }

    /// Apply `f` to every item with a per-thread scratch value, returning
    /// results in item order.
    ///
    /// `init` runs once per worker thread (once total in serial mode) to
    /// build that worker's scratch; `f` receives `(&mut scratch, index,
    /// &item)`. Use the scratch for reusable forward-pass buffers so the
    /// steady state performs no per-item heap allocation.
    pub fn map_with<T, U, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> U + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let mut scratch = init();
            let out: Vec<U> = items
                .iter()
                .enumerate()
                .map(|(i, item)| f(&mut scratch, i, item))
                .collect();
            if let Some(m) = &self.metrics {
                m.record_call(items.len() as u64, items.len() as u64);
            }
            return out;
        }

        let slots: Vec<Mutex<Option<U>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        // Telemetry only: the largest number of items any single worker
        // claimed in this call (relaxed — never read mid-call).
        let max_claimed = AtomicU64::new(0);
        let result = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let slots = &slots;
                let cursor = &cursor;
                let init = &init;
                let f = &f;
                let max_claimed = &max_claimed;
                let count_claims = self.metrics.is_some();
                handles.push(scope.spawn(move |_| {
                    let mut scratch = init();
                    let mut claimed: u64 = 0;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        claimed += 1;
                        *slots[i].lock() = Some(f(&mut scratch, i, &items[i]));
                    }
                    if count_claims {
                        max_claimed.fetch_max(claimed, Ordering::Relaxed);
                    }
                }));
            }
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        if let Some(m) = &self.metrics {
            m.record_call(items.len() as u64, max_claimed.load(Ordering::Relaxed));
        }
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every index below items.len() is claimed exactly once")
            })
            .collect()
    }

    /// Apply `f` to the items selected by `indices` (a subset of
    /// `0..items.len()`), returning one result per selected index in
    /// `indices` order.
    ///
    /// This is the recovery-path companion to [`ExecPool::map_with`]: after a
    /// full sweep flags a few suspicious items, only those are re-evaluated,
    /// with the same determinism guarantees as the full map.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds for `items`.
    pub fn map_subset<T, U, S, I, F>(&self, items: &[T], indices: &[usize], init: I, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> U + Sync,
    {
        self.map_with(indices, init, |scratch, _, &i| f(scratch, i, &items[i]))
    }
}

/// Fixed-shape pairwise sum: the reduction tree depends only on `values.len()`,
/// so the result is bitwise identical no matter how the values were produced
/// (serially or by any number of threads).
///
/// Pairwise summation also carries better rounding behaviour than a running
/// left-to-right sum (error grows O(log n) instead of O(n)).
pub fn tree_sum(values: &[f64]) -> f64 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        2 => values[0] + values[1],
        n => {
            let mid = n / 2;
            tree_sum(&values[..mid]) + tree_sum(&values[mid..])
        }
    }
}

/// Fixed-shape pairwise reduction over owned values (e.g. gradient vectors).
///
/// `combine` is applied along a balanced binary tree whose shape depends only
/// on the input length, making the result independent of how the inputs were
/// computed. Returns `None` for an empty input.
pub fn tree_reduce<T>(values: Vec<T>, combine: &impl Fn(T, T) -> T) -> Option<T> {
    fn rec<T>(values: &mut Vec<Option<T>>, lo: usize, hi: usize, combine: &impl Fn(T, T) -> T) -> T {
        debug_assert!(lo < hi);
        if hi - lo == 1 {
            return values[lo].take().expect("each leaf is consumed once");
        }
        let mid = lo + (hi - lo) / 2;
        let left = rec(values, lo, mid, combine);
        let right = rec(values, mid, hi, combine);
        combine(left, right)
    }
    if values.is_empty() {
        return None;
    }
    let mut slots: Vec<Option<T>> = values.into_iter().map(Some).collect();
    let n = slots.len();
    Some(rec(&mut slots, 0, n, combine))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_map_agree_bitwise() {
        let items: Vec<f64> = (0..257).map(|i| (i as f64).sin()).collect();
        let f = |_: usize, x: &f64| x.exp().ln_1p() * 1.000000001;
        let serial = ExecPool::serial().map(&items, f);
        for threads in [2, 3, 4, 8] {
            let parallel = ExecPool::new(threads).map(&items, f);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn map_with_reuses_scratch_per_thread() {
        let items: Vec<usize> = (0..100).collect();
        let out = ExecPool::new(4).map_with(
            &items,
            || Vec::<usize>::with_capacity(8),
            |scratch, i, &item| {
                scratch.push(i);
                item * 2
            },
        );
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn tree_sum_matches_exact_for_small_inputs() {
        assert_eq!(tree_sum(&[]), 0.0);
        assert_eq!(tree_sum(&[1.5]), 1.5);
        assert_eq!(tree_sum(&[1.5, 2.5]), 4.0);
        assert_eq!(tree_sum(&[1.0, 2.0, 3.0]), 1.0 + (2.0 + 3.0));
    }

    #[test]
    fn tree_sum_shape_is_length_only() {
        let values: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let a = tree_sum(&values);
        let b = tree_sum(&values.clone());
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn tree_reduce_combines_all_values() {
        let got = tree_reduce((1..=10).collect::<Vec<u64>>(), &|a, b| a + b);
        assert_eq!(got, Some(55));
        assert_eq!(tree_reduce(Vec::<u64>::new(), &|a, b| a + b), None);
    }

    #[test]
    fn pool_size_one_runs_inline() {
        let pool = ExecPool::new(0);
        assert!(pool.is_serial());
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let ids = pool.map(&[1, 2, 3], |_, _| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn map_subset_targets_selected_indices_only() {
        let items: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let indices = [3usize, 7, 42];
        for threads in [1usize, 4] {
            let out = ExecPool::new(threads).map_subset(&items, &indices, || (), |(), i, &x| {
                (i, x * 2.0)
            });
            assert_eq!(out, vec![(3, 6.0), (7, 14.0), (42, 84.0)]);
        }
        let empty = ExecPool::new(4).map_subset(&items, &[], || (), |(), _, &x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn instrumented_pool_counts_calls_and_items() {
        let pool = ExecPool::new(4).instrumented();
        let items: Vec<u64> = (0..100).collect();
        let out = pool.map(&items, |_, &x| x + 1);
        assert_eq!(out.len(), 100);
        pool.map(&items[..10], |_, &x| x);
        let snap = pool.metrics().unwrap().snapshot();
        assert_eq!(snap.map_calls, 2);
        assert_eq!(snap.items, 110);
        assert!(snap.peak_worker_share_milli <= 1000);
        assert!(snap.peak_worker_share_milli > 0);

        // Instrumentation must not change results.
        let plain = ExecPool::new(4).map(&items, |_, &x| x + 1);
        assert_eq!(out, plain);

        // Uninstrumented pools expose no metrics.
        assert!(ExecPool::serial().metrics().is_none());

        // Serial instrumented pool: one worker claims everything.
        let serial = ExecPool::serial().instrumented();
        serial.map(&items, |_, &x| x);
        assert_eq!(
            serial.metrics().unwrap().snapshot().peak_worker_share_milli,
            1000
        );
    }

    #[test]
    fn env_override_is_honoured_via_with_threads() {
        assert_eq!(ExecPool::with_threads(Some(3)).threads(), 3);
        assert!(ExecPool::with_threads(None).threads() >= 1);
    }
}
