//! Deadline watchdog and deterministic retry backoff for chip-query phases.
//!
//! Real chip queries go over a lab link that can hang. [`run_guarded`] runs
//! a blocking phase under a deadline: a watchdog thread arms a timer, and if
//! the phase has not finished when it fires, a caller-supplied cancellation
//! hook runs (typically raising the chip's abort flag so the hung query
//! returns a poisoned reading). The phase itself always runs on the calling
//! thread and always returns — the watchdog never kills anything, it only
//! asks the blocking layer to give up.
//!
//! [`BackoffSchedule`] spaces the retries: exponential growth from a base
//! delay, capped, with deterministic multiplicative jitter derived from a
//! seed — so tests can assert the exact schedule and two runs with the same
//! policy behave identically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// How a durable training run guards its chip-query phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogPolicy {
    /// Wall-clock budget for one guarded phase (one epoch of queries).
    pub deadline: Duration,
    /// Consecutive timed-out attempts tolerated before the run aborts.
    pub max_timeouts: u32,
    /// First retry delay; later retries double it.
    pub backoff_base: Duration,
    /// Ceiling on any single retry delay.
    pub backoff_max: Duration,
    /// Seed for the deterministic retry jitter.
    pub jitter_seed: u64,
}

impl WatchdogPolicy {
    /// A lenient default: generous deadline, three retries, sub-second
    /// backoff.
    pub fn standard() -> Self {
        WatchdogPolicy {
            deadline: Duration::from_secs(30),
            max_timeouts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(800),
            jitter_seed: 0,
        }
    }

    /// The retry schedule this policy induces.
    pub fn backoff(&self) -> BackoffSchedule {
        BackoffSchedule {
            base: self.backoff_base,
            max: self.backoff_max,
            seed: self.jitter_seed,
        }
    }
}

/// Exponential backoff with deterministic multiplicative jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffSchedule {
    /// First-attempt delay.
    pub base: Duration,
    /// Ceiling on any delay.
    pub max: Duration,
    /// Jitter seed; equal seeds yield equal schedules.
    pub seed: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BackoffSchedule {
    /// Delay before retry `attempt` (1-based): `base · 2^(attempt-1)`,
    /// jittered into `[1.0×, 1.5×)` by a hash of `(seed, attempt)`, capped
    /// at `max`. Pure in `(self, attempt)`.
    ///
    /// The jitter band sits *above* the nominal value so the schedule is
    /// monotone non-decreasing in `attempt`: doubling the nominal always
    /// clears the previous attempt's ≤1.5× jitter, and once an attempt
    /// saturates at `max` every later one does too. A band straddling 1.0
    /// (e.g. `[0.5, 1.5)`) would let a lucky later retry fire *sooner* than
    /// an earlier one — exactly the thundering-herd pattern jitter exists
    /// to avoid.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let nominal = self.base.saturating_mul(1u32 << exp).min(self.max);
        let h = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E6D));
        // Map the hash to [1.0, 1.5).
        let factor = 1.0 + (h >> 11) as f64 / (1u64 << 54) as f64;
        nominal.mul_f64(factor).min(self.max)
    }
}

/// Runs `body` on the calling thread under a `deadline`.
///
/// If `body` finishes in time, `on_deadline` never runs. Otherwise a
/// watchdog thread invokes `on_deadline` exactly once (e.g. to raise an
/// [`AbortFlag`](https://docs.rs/photon-photonics) so a hung query returns)
/// and keeps waiting for `body`, which must eventually return once
/// cancelled. Returns `(result, fired)` where `fired` says whether the
/// deadline hit.
///
/// The guard is cooperative by design: nothing is killed, no state is
/// corrupted mid-flight, and the caller decides what a fired deadline means
/// (retry the phase, discard its partial state, or abort the run).
pub fn run_guarded<T, F, G>(deadline: Duration, on_deadline: G, body: F) -> (T, bool)
where
    F: FnOnce() -> T,
    G: FnOnce() + Send,
{
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let fired = AtomicBool::new(false);
    let result = thread::scope(|scope| {
        let fired_ref = &fired;
        scope.spawn(move || {
            if let Err(mpsc::RecvTimeoutError::Timeout) = done_rx.recv_timeout(deadline) {
                fired_ref.store(true, Ordering::SeqCst);
                on_deadline();
                // Hold the scope open until the body returns (sender drop).
                let _ = done_rx.recv();
            }
        });
        let out = body();
        drop(done_tx);
        out
    });
    (result, fired.load(Ordering::SeqCst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Instant;

    #[test]
    fn fast_body_never_fires() {
        let (out, fired) = run_guarded(Duration::from_secs(10), || panic!("must not fire"), || 41 + 1);
        assert_eq!(out, 42);
        assert!(!fired);
    }

    #[test]
    fn slow_body_fires_once_and_still_returns() {
        let hits = AtomicU32::new(0);
        let stop = AtomicBool::new(false);
        let (out, fired) = run_guarded(
            Duration::from_millis(20),
            || {
                hits.fetch_add(1, Ordering::SeqCst);
                stop.store(true, Ordering::SeqCst);
            },
            || {
                // A cooperative "hung" phase: spins until cancelled.
                let t0 = Instant::now();
                while !stop.load(Ordering::SeqCst) {
                    assert!(t0.elapsed() < Duration::from_secs(10), "never cancelled");
                    thread::sleep(Duration::from_millis(1));
                }
                7
            },
        );
        assert_eq!(out, 7);
        assert!(fired);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let sched = BackoffSchedule {
            base: Duration::from_millis(10),
            max: Duration::from_millis(200),
            seed: 9,
        };
        let again = BackoffSchedule {
            base: Duration::from_millis(10),
            max: Duration::from_millis(200),
            seed: 9,
        };
        for attempt in 1..=12 {
            let d = sched.delay(attempt);
            assert_eq!(d, again.delay(attempt), "schedule must be pure");
            assert!(d <= Duration::from_millis(200), "cap violated: {d:?}");
            // Jitter stays within [1.0, 1.5) of the nominal value.
            let nominal = Duration::from_millis(10)
                .saturating_mul(1 << (attempt - 1).min(20))
                .min(Duration::from_millis(200));
            assert!(d >= nominal, "{d:?} < nominal {nominal:?}");
        }
        let other = BackoffSchedule {
            base: Duration::from_millis(10),
            max: Duration::from_millis(200),
            seed: 10,
        };
        assert_ne!(sched.delay(1), other.delay(1), "seed must matter");
    }

    #[test]
    fn backoff_delays_are_monotone_and_capped_across_seeds() {
        // The retry schedule must never wait *less* after failing *more*,
        // for any jitter seed, and must respect the cap everywhere.
        for seed in 0..64u64 {
            let sched = BackoffSchedule {
                base: Duration::from_millis(7),
                max: Duration::from_millis(500),
                seed,
            };
            let mut prev = Duration::ZERO;
            for attempt in 1..=24 {
                let d = sched.delay(attempt);
                assert!(
                    d >= prev,
                    "seed {seed}: delay({attempt}) = {d:?} < delay({}) = {prev:?}",
                    attempt - 1
                );
                assert!(d <= Duration::from_millis(500), "seed {seed}: {d:?} over cap");
                prev = d;
            }
            // Deep attempts saturate at the cap exactly.
            assert_eq!(sched.delay(24), Duration::from_millis(500));
        }
    }
}
