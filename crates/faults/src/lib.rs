//! # photon-faults
//!
//! Deterministic, seeded fault injection for simulated ONN chips.
//!
//! A [`FaultyChip`] wraps any [`OnnChip`] and corrupts its behavior with the
//! three fault families a real photonic testbench exhibits:
//!
//! - **drift** — slow per-phase-shifter thermal drift, modeled as an
//!   Ornstein–Uhlenbeck random walk added to the commanded phases on top of
//!   the chip's static fabrication errors ([`DriftConfig`]);
//! - **transient** — per-measurement faults: dropped reads (the readout
//!   returns NaN), outlier spikes (one detector port multiplied by a large
//!   factor) and shot-noise bursts ([`TransientConfig`]);
//! - **hard** — stuck/dead phase shifters that ignore their drive and hold a
//!   fixed phase ([`StuckShifter`]);
//! - **hang** — a read blocks as if the lab link stalled, until the chip's
//!   [`AbortFlag`] is raised (by a watchdog) or a safety valve expires, then
//!   comes back poisoned ([`HangConfig`]).
//!
//! Everything is reproducible from the single seed in [`FaultPlan`] and —
//! crucially — **bitwise stable across `photon-exec` pool sizes**. Slow
//! state (drift) only advances at the serial [`OnnChip::advance_to`] control
//! point, called once per training iteration; transient fault decisions are
//! pure hashes of the *content* of a measurement (step, commanded phases,
//! input field, readout kind) plus a per-content attempt counter, never of
//! the order in which worker threads happen to issue queries. Re-reading the
//! same measurement (the retry path in `photon-opt`) bumps the attempt
//! counter and gets a fresh, deterministic fault decision.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use photon_linalg::CVector;
//! use photon_photonics::{Architecture, ErrorModel, FabricatedChip, OnnChip};
//! use photon_faults::{FaultPlan, FaultyChip, TransientConfig};
//!
//! let arch = Architecture::single_mesh(4, 4)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
//! let plan = FaultPlan::new(42).with_transients(TransientConfig {
//!     drop_prob: 0.5,
//!     ..TransientConfig::default()
//! });
//! let faulty = FaultyChip::new(chip, plan);
//!
//! let theta = faulty.init_params(&mut rng);
//! faulty.advance_to(1);
//! let y = faulty.forward(&CVector::basis(4, 0), &theta);
//! // Roughly half of all reads come back as NaN; the schedule is fixed by
//! // the seed, so this exact read always gives the same answer.
//! assert_eq!(y.len(), 4);
//! # Ok::<(), photon_photonics::NetworkError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use photon_linalg::random::standard_normal;
use photon_linalg::{CVector, RVector};
use photon_photonics::{
    AbortFlag, Architecture, BatchScratch, CacheStats, ChipScratch, ErrorVector, Network, OnnChip,
};
use photon_trace::{TraceEvent, TraceHandle};

/// Ornstein–Uhlenbeck thermal drift on the phase-shifter drives.
///
/// Each parameter `i` carries a hidden offset `d_i` evolving once per
/// [`OnnChip::advance_to`] step as
///
/// ```text
/// d_i ← a·d_i + σ·√(1−a²)·N(0,1),   a = exp(−1/τ)
/// ```
///
/// so the stationary distribution is `N(0, σ²)` and `τ` is the correlation
/// time in training iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Stationary standard deviation of the per-phase drift (radians).
    pub sigma: f64,
    /// Correlation time in `advance_to` steps.
    pub tau: f64,
}

impl Default for DriftConfig {
    /// A mild but visible drift: σ = 0.02 rad, τ = 25 iterations.
    fn default() -> Self {
        DriftConfig {
            sigma: 0.02,
            tau: 25.0,
        }
    }
}

/// Transient per-measurement fault rates.
///
/// Faults are decided independently per read (drop, then spike, then burst;
/// at most one fires per read) from a pure hash of the measurement content,
/// so identical fault schedules replay across pool sizes and reruns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Probability a read is dropped entirely (readout becomes NaN).
    pub drop_prob: f64,
    /// Probability one detector port spikes by [`TransientConfig::spike_scale`].
    pub spike_prob: f64,
    /// Multiplicative size of an outlier spike.
    pub spike_scale: f64,
    /// Probability a read suffers a correlated shot-noise burst.
    pub burst_prob: f64,
    /// Per-port standard deviation of a burst.
    pub burst_sigma: f64,
}

impl Default for TransientConfig {
    /// All rates zero except a nominal spike size, so enabling a single
    /// fault family needs one field override.
    fn default() -> Self {
        TransientConfig {
            drop_prob: 0.0,
            spike_prob: 0.0,
            spike_scale: 1e3,
            burst_prob: 0.0,
            burst_sigma: 0.05,
        }
    }
}

/// Hung-readout faults: a read blocks as if the lab link stalled.
///
/// A hung read busy-waits (sleeping) until either the chip's [`AbortFlag`]
/// is raised — the cooperative-cancellation path a deadline watchdog uses —
/// or `max_block` expires as a safety valve. Either way the reading comes
/// back poisoned (all-NaN), mirroring what an aborted lab query yields. The
/// *decision* to hang is a pure content hash like every transient fault, so
/// hang schedules replay deterministically; only the blocking time is
/// wall-clock-dependent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HangConfig {
    /// Probability a read hangs.
    pub prob: f64,
    /// Safety valve: a hung read unblocks on its own after this long even
    /// if nothing raises the abort flag (keeps unguarded tests finite).
    pub max_block: Duration,
}

impl Default for HangConfig {
    /// Disabled by default, with a 30 s safety valve.
    fn default() -> Self {
        HangConfig {
            prob: 0.0,
            max_block: Duration::from_secs(30),
        }
    }
}

/// A periodic failure-burst profile: windows of elevated fault rates.
///
/// Real hardware rarely fails uniformly — a flaky fiber coupling or a
/// thermal event produces *bursts* of bad reads separated by quiet
/// stretches. This profile scales every transient and hang probability by
/// `multiplier` (capped at certainty) whenever the chip's logical step
/// satisfies `step % period < burst_len`. The step only advances at the
/// serial `advance_to` control point, so burst windows are a pure function
/// of training progress: schedules replay bitwise across pool sizes and
/// reruns, and a farm health monitor sees the same burst on every retry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureBurst {
    /// Window period in logical steps (0 disables the profile).
    pub period: u64,
    /// Leading steps of each period that are inside the burst.
    pub burst_len: u64,
    /// Probability multiplier applied inside a burst window (≥ 1 for an
    /// elevated rate; the scaled probability is capped at 1).
    pub multiplier: f64,
}

impl FailureBurst {
    /// The fault-probability multiplier at logical step `step`.
    pub fn boost_at(&self, step: u64) -> f64 {
        if self.period == 0 || self.burst_len == 0 {
            return 1.0;
        }
        if step % self.period < self.burst_len {
            self.multiplier
        } else {
            1.0
        }
    }
}

/// A hard fault: phase shifter `index` ignores its drive and holds `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckShifter {
    /// Parameter index of the dead shifter.
    pub index: usize,
    /// Phase the shifter is stuck at (radians).
    pub value: f64,
}

/// The complete seeded fault schedule for one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; all drift draws and transient decisions derive from it.
    pub seed: u64,
    /// Slow thermal drift, if enabled.
    pub drift: Option<DriftConfig>,
    /// Transient measurement faults, if enabled.
    pub transient: Option<TransientConfig>,
    /// Hard stuck-shifter faults.
    pub stuck: Vec<StuckShifter>,
    /// Hung-readout faults, if enabled.
    pub hang: Option<HangConfig>,
    /// Periodic failure-burst windows scaling transient/hang rates.
    pub burst_profile: Option<FailureBurst>,
}

impl FaultPlan {
    /// A plan with every fault family disabled (pure pass-through).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drift: None,
            transient: None,
            stuck: Vec::new(),
            hang: None,
            burst_profile: None,
        }
    }

    /// Enables thermal drift.
    pub fn with_drift(mut self, drift: DriftConfig) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Enables transient measurement faults.
    pub fn with_transients(mut self, transient: TransientConfig) -> Self {
        self.transient = Some(transient);
        self
    }

    /// Adds a stuck phase shifter.
    pub fn with_stuck(mut self, stuck: StuckShifter) -> Self {
        self.stuck.push(stuck);
        self
    }

    /// Enables hung-readout faults.
    pub fn with_hangs(mut self, hang: HangConfig) -> Self {
        self.hang = Some(hang);
        self
    }

    /// Enables a periodic failure-burst profile.
    pub fn with_burst_profile(mut self, burst: FailureBurst) -> Self {
        self.burst_profile = Some(burst);
        self
    }

    /// The fault-probability multiplier this plan applies at `step`.
    fn boost_at(&self, step: u64) -> f64 {
        self.burst_profile.map_or(1.0, |b| b.boost_at(step))
    }
}

/// Running totals of injected faults, for observability in tests and
/// training reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Reads dropped (returned NaN).
    pub dropped: u64,
    /// Reads hit by an outlier spike.
    pub spiked: u64,
    /// Reads hit by a shot-noise burst.
    pub bursts: u64,
    /// Reads that hung until cancelled (or the safety valve expired).
    pub hung: u64,
}

#[derive(Debug)]
struct FaultState {
    /// Logical step last passed to `advance_to`.
    step: u64,
    /// Current OU drift offsets, one per chip parameter.
    drift: RVector,
    /// Drift-stream RNG (advanced only at the serial control point).
    rng: StdRng,
    /// Per-content re-read counters for the current step; attempt `k` of a
    /// content gets an independent fault decision, so retries see fresh
    /// readings regardless of worker-thread scheduling.
    attempts: HashMap<u64, u32>,
    /// Fault totals last forwarded to the trace handle (emission happens
    /// only at the serial control point, so event order is deterministic).
    reported: FaultCounts,
    /// Logical theta last passed to `pin_compile_base` — the *deployed*
    /// phases, before drift/stuck resolution (the inner chip only ever
    /// sees fault-effective phases).
    pinned_theta: Option<RVector>,
}

/// An [`OnnChip`] decorator that injects the [`FaultPlan`]'s faults into
/// every measurement of the wrapped chip.
///
/// Dropped reads still consume a query on the inner chip: the lab charged
/// you for the measurement even though the detector returned garbage.
#[derive(Debug)]
pub struct FaultyChip<C: OnnChip> {
    inner: C,
    plan: FaultPlan,
    state: Mutex<FaultState>,
    dropped: AtomicU64,
    spiked: AtomicU64,
    bursts: AtomicU64,
    hung: AtomicU64,
    abort: AbortFlag,
    trace: TraceHandle,
}

const TAG_FIELD: u64 = 0x1;
const TAG_POWERS: u64 = 0x2;
const SALT_DROP: u64 = 0x9e37_79b9_7f4a_7c15;
const SALT_SPIKE: u64 = 0xbf58_476d_1ce4_e5b9;
const SALT_PORT: u64 = 0x94d0_49bb_1331_11eb;
const SALT_BURST: u64 = 0xd6e8_feb8_6659_fd93;
const SALT_NOISE: u64 = 0xa076_1d64_78bd_642f;
const SALT_HANG: u64 = 0xe703_7ed1_a0b4_28db;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform in `(0, 1)` (never exactly 0, so logs are safe).
fn unit(h: u64) -> f64 {
    (((h >> 11) as f64) + 1.0) / (1u64 << 53) as f64
}

/// One standard-normal draw derived purely from a hash (Box–Muller).
fn hashed_normal(h: u64) -> f64 {
    let u = unit(splitmix64(h));
    let v = unit(splitmix64(h ^ SALT_NOISE));
    (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
}

impl<C: OnnChip> FaultyChip<C> {
    /// Wraps `inner` under the fault schedule `plan`.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        let n = inner.param_count();
        let seed = plan.seed;
        FaultyChip {
            inner,
            plan,
            state: Mutex::new(FaultState {
                step: 0,
                drift: RVector::zeros(n),
                rng: StdRng::seed_from_u64(splitmix64(seed)),
                attempts: HashMap::new(),
                reported: FaultCounts::default(),
                pinned_theta: None,
            }),
            dropped: AtomicU64::new(0),
            spiked: AtomicU64::new(0),
            bursts: AtomicU64::new(0),
            hung: AtomicU64::new(0),
            abort: AbortFlag::new(),
            trace: TraceHandle::null(),
        }
    }

    /// Forwards cumulative fault counters to `trace` as
    /// [`TraceEvent::FaultStats`] events, emitted from the serial
    /// `advance_to` control point whenever the totals changed since the
    /// last emission. Telemetry only: fault decisions, drift evolution and
    /// readings are unaffected.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// The wrapped chip.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The active fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Totals of transient faults injected so far.
    pub fn fault_counts(&self) -> FaultCounts {
        FaultCounts {
            dropped: self.dropped.load(Ordering::Relaxed),
            spiked: self.spiked.load(Ordering::Relaxed),
            bursts: self.bursts.load(Ordering::Relaxed),
            hung: self.hung.load(Ordering::Relaxed),
        }
    }

    /// The current per-parameter drift offsets (a copy).
    pub fn drift_snapshot(&self) -> RVector {
        self.state.lock().drift.clone()
    }

    /// The logical step last passed to [`OnnChip::advance_to`].
    pub fn current_step(&self) -> u64 {
        self.state.lock().step
    }

    /// Content key: a pure function of what is being measured — never of
    /// when or on which thread. Distinct probes hash to distinct keys
    /// (almost surely, for continuous-valued probes), so per-read fault
    /// decisions commute with any `photon-exec` schedule.
    fn content_key(&self, step: u64, x: &CVector, theta: &RVector, tag: u64) -> u64 {
        let mut h = splitmix64(self.plan.seed ^ splitmix64(step) ^ tag);
        for v in theta.iter() {
            h = splitmix64(h ^ v.to_bits());
        }
        for z in x.iter() {
            h = splitmix64(h ^ z.re.to_bits());
            h = splitmix64(h ^ z.im.to_bits());
        }
        h
    }

    /// Applies drift + stuck faults to the commanded phases and returns the
    /// per-read attempt-salted decision key plus the failure-burst
    /// probability boost active at the current logical step.
    fn prepare(&self, x: &CVector, theta: &RVector, tag: u64) -> (RVector, u64, f64) {
        let mut st = self.state.lock();
        let mut eff = theta.clone();
        if self.plan.drift.is_some() {
            eff.axpy(1.0, &st.drift);
        }
        for s in &self.plan.stuck {
            eff.as_mut_slice()[s.index] = s.value;
        }
        let key = self.content_key(st.step, x, theta, tag);
        let attempt = st.attempts.entry(key).or_insert(0);
        let salted = splitmix64(key ^ (*attempt as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
        *attempt += 1;
        let boost = self.plan.boost_at(st.step);
        (eff, salted, boost)
    }

    /// Batched [`FaultyChip::prepare`]: resolves drift + stuck faults once
    /// (they depend only on `theta` and the step, shared by the whole
    /// batch) and derives one attempt-salted decision key per sample, in
    /// batch order under a single lock. The keys are identical to what
    /// per-sample reads of the same contents would produce, so fault
    /// decisions stay schedule-independent.
    fn prepare_batch(
        &self,
        xs: &[&CVector],
        theta: &RVector,
        tag: u64,
    ) -> (RVector, Vec<u64>, f64) {
        let mut st = self.state.lock();
        let mut eff = theta.clone();
        if self.plan.drift.is_some() {
            eff.axpy(1.0, &st.drift);
        }
        for s in &self.plan.stuck {
            eff.as_mut_slice()[s.index] = s.value;
        }
        let step = st.step;
        let salts = xs
            .iter()
            .map(|x| {
                let key = self.content_key(step, x, theta, tag);
                let attempt = st.attempts.entry(key).or_insert(0);
                let salted =
                    splitmix64(key ^ (*attempt as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
                *attempt += 1;
                salted
            })
            .collect();
        let boost = self.plan.boost_at(step);
        (eff, salts, boost)
    }

    /// Whether this read's content hash schedules a hang. Pure in
    /// `(salted, boost)`; `boost` scales the probability inside a failure
    /// burst window.
    fn hang_for(&self, salted: u64, boost: f64) -> Option<HangConfig> {
        let h = self.plan.hang?;
        (unit(splitmix64(salted ^ SALT_HANG)) < (h.prob * boost).min(1.0)).then_some(h)
    }

    /// Simulates the stalled lab link: blocks until the abort flag is
    /// raised or the safety valve expires. Runs on whatever worker thread
    /// issued the read — exactly like a real hung I/O call would.
    fn block_until_cancelled(&self, max_block: Duration) {
        let t0 = Instant::now();
        while !self.abort.is_raised() && t0.elapsed() < max_block {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.hung.fetch_add(1, Ordering::Relaxed);
    }

    /// Applies this read's transient fault (if any) to a field readout.
    fn corrupt_field(&self, out: &mut CVector, salted: u64, boost: f64) {
        if let Some(h) = self.hang_for(salted, boost) {
            self.block_until_cancelled(h.max_block);
            for z in out.iter_mut() {
                z.re = f64::NAN;
                z.im = f64::NAN;
            }
            return;
        }
        match self.transient_for(salted, boost) {
            Some(Transient::Drop) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                for z in out.iter_mut() {
                    z.re = f64::NAN;
                    z.im = f64::NAN;
                }
            }
            Some(Transient::Spike { port, scale }) => {
                self.spiked.fetch_add(1, Ordering::Relaxed);
                let p = (port % out.len() as u64) as usize;
                out[p] = out[p].scale(scale);
            }
            Some(Transient::Burst { key, sigma }) => {
                self.bursts.fetch_add(1, Ordering::Relaxed);
                for (i, z) in out.iter_mut().enumerate() {
                    z.re += sigma * hashed_normal(key ^ (2 * i) as u64);
                    z.im += sigma * hashed_normal(key ^ (2 * i + 1) as u64);
                }
            }
            None => {}
        }
    }

    /// Applies this read's transient fault (if any) to a power readout.
    fn corrupt_powers(&self, powers: &mut RVector, salted: u64, boost: f64) {
        if let Some(h) = self.hang_for(salted, boost) {
            self.block_until_cancelled(h.max_block);
            powers.fill(f64::NAN);
            return;
        }
        match self.transient_for(salted, boost) {
            Some(Transient::Drop) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                powers.fill(f64::NAN);
            }
            Some(Transient::Spike { port, scale }) => {
                self.spiked.fetch_add(1, Ordering::Relaxed);
                let p = (port % powers.len() as u64) as usize;
                powers.as_mut_slice()[p] *= scale;
            }
            Some(Transient::Burst { key, sigma }) => {
                self.bursts.fetch_add(1, Ordering::Relaxed);
                for (i, p) in powers.iter_mut().enumerate() {
                    *p = (*p + sigma * hashed_normal(key ^ i as u64)).max(0.0);
                }
            }
            None => {}
        }
    }

    /// Whether the (drop / spike / burst) family fires for this read, and
    /// with what shape. At most one family fires, tried in severity order.
    /// `boost` scales every rate inside a failure burst window.
    fn transient_for(&self, salted: u64, boost: f64) -> Option<Transient> {
        let t = self.plan.transient?;
        if unit(splitmix64(salted ^ SALT_DROP)) < (t.drop_prob * boost).min(1.0) {
            return Some(Transient::Drop);
        }
        if unit(splitmix64(salted ^ SALT_SPIKE)) < (t.spike_prob * boost).min(1.0) {
            return Some(Transient::Spike {
                port: splitmix64(salted ^ SALT_PORT),
                scale: t.spike_scale,
            });
        }
        if unit(splitmix64(salted ^ SALT_BURST)) < (t.burst_prob * boost).min(1.0) {
            return Some(Transient::Burst {
                key: salted,
                sigma: t.burst_sigma,
            });
        }
        None
    }
}

enum Transient {
    Drop,
    Spike { port: u64, scale: f64 },
    Burst { key: u64, sigma: f64 },
}

impl<C: OnnChip> OnnChip for FaultyChip<C> {
    fn architecture(&self) -> &Architecture {
        self.inner.architecture()
    }

    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }

    fn param_count(&self) -> usize {
        self.inner.param_count()
    }

    fn init_params<R: Rng + ?Sized>(&self, rng: &mut R) -> RVector {
        self.inner.init_params(rng)
    }

    fn forward_into<'s>(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &'s mut ChipScratch,
    ) -> &'s CVector {
        let (eff, salted, boost) = self.prepare(x, theta, TAG_FIELD);
        self.inner.forward_into(x, &eff, scratch);
        let out = scratch.field_mut();
        self.corrupt_field(out, salted, boost);
        &*out
    }

    fn forward_batch_into<'s>(
        &self,
        xs: &[&CVector],
        theta: &RVector,
        scratch: &'s mut BatchScratch,
    ) -> &'s [CVector] {
        let (eff, salts, boost) = self.prepare_batch(xs, theta, TAG_FIELD);
        self.inner.forward_batch_into(xs, &eff, scratch);
        let fields = &mut scratch.fields_mut()[..xs.len()];
        for (out, salted) in fields.iter_mut().zip(salts) {
            self.corrupt_field(out, salted, boost);
        }
        &*fields
    }

    fn forward_powers_batch_into<'s>(
        &self,
        xs: &[&CVector],
        theta: &RVector,
        scratch: &'s mut BatchScratch,
    ) -> &'s [RVector] {
        let (eff, salts, boost) = self.prepare_batch(xs, theta, TAG_POWERS);
        self.inner.forward_powers_batch_into(xs, &eff, scratch);
        let powers = &mut scratch.powers_mut()[..xs.len()];
        for (out, salted) in powers.iter_mut().zip(salts) {
            self.corrupt_powers(out, salted, boost);
        }
        &*powers
    }

    fn forward_powers_into<'s>(
        &self,
        x: &CVector,
        theta: &RVector,
        scratch: &'s mut ChipScratch,
    ) -> &'s RVector {
        let (eff, salted, boost) = self.prepare(x, theta, TAG_POWERS);
        self.inner.forward_powers_into(x, &eff, scratch);
        let powers = scratch.powers_mut();
        self.corrupt_powers(powers, salted, boost);
        &*powers
    }

    fn query_count(&self) -> u64 {
        self.inner.query_count()
    }

    fn reset_query_count(&self) {
        self.inner.reset_query_count()
    }

    fn oracle_errors(&self) -> ErrorVector {
        self.inner.oracle_errors()
    }

    fn oracle_network(&self) -> Network {
        self.inner.oracle_network()
    }

    fn cache_stats(&self) -> CacheStats {
        self.inner.cache_stats()
    }

    /// Pins the inner chip's compile base at the *fault-effective* phases:
    /// drift and stuck offsets are resolved at the current step exactly as
    /// [`FaultyChip::prepare_batch`] would, so the pin matches the theta
    /// the inner chip actually sees for batched reads issued at this step.
    /// Serial control point, like [`OnnChip::advance_to`].
    fn pin_compile_base(&self, theta: &RVector) {
        let eff = {
            let mut st = self.state.lock();
            st.pinned_theta = Some(theta.clone());
            let mut eff = theta.clone();
            if self.plan.drift.is_some() {
                eff.axpy(1.0, &st.drift);
            }
            for s in &self.plan.stuck {
                eff.as_mut_slice()[s.index] = s.value;
            }
            eff
        };
        self.inner.pin_compile_base(&eff);
    }

    /// The *logical* deployed theta — what the caller pinned, not the
    /// fault-effective phases forwarded to the inner chip.
    fn pinned_theta(&self) -> Option<RVector> {
        self.state.lock().pinned_theta.clone()
    }

    /// The real cancellation flag hung reads poll. A watchdog that raises
    /// it unblocks every in-flight hung read promptly (the readings come
    /// back poisoned); clear it before retrying.
    fn abort_flag(&self) -> AbortFlag {
        self.abort.clone()
    }

    /// Advances the OU drift by `step − current` increments and resets the
    /// per-step re-read counters. Serial control point: call exactly once
    /// per training iteration, never from worker threads.
    fn advance_to(&self, step: u64) {
        let mut st = self.state.lock();
        if step <= st.step {
            return;
        }
        if let Some(d) = self.plan.drift {
            let a = (-1.0 / d.tau).exp();
            let b = d.sigma * (1.0 - a * a).sqrt();
            let increments = step - st.step;
            let FaultState { drift, rng, .. } = &mut *st;
            for _ in 0..increments {
                for v in drift.iter_mut() {
                    *v = a * *v + b * standard_normal(rng);
                }
            }
        }
        st.step = step;
        st.attempts.clear();
        // Telemetry: forward cumulative fault totals when they moved since
        // the last control point. Emitting only here (never from worker
        // threads) keeps the event stream deterministic.
        if self.trace.is_enabled() {
            let counts = self.fault_counts();
            if counts != st.reported {
                st.reported = counts;
                self.trace.emit(|| TraceEvent::FaultStats {
                    step,
                    dropped: counts.dropped,
                    spiked: counts.spiked,
                    bursts: counts.bursts,
                });
            }
        }
        self.inner.advance_to(step);
    }
}

/// A scripted, seedless infrastructure-failure schedule for one *serving
/// replica*, keyed on **virtual nanoseconds** — the discrete-event
/// counterpart of [`ChaosPlan`](https://docs.rs/)-style dispatch-ordinal
/// scripting in `photon-farm`.
///
/// Two failure modes, matching what the calibrated-model line actually
/// observes in the lab:
///
/// * **kill** — the replica dies at `kill_at_ns` and never completes
///   another dispatch (power loss, fiber cut). Absorbing.
/// * **hang window** — between `hang_from_ns` and `hang_until_ns` the
///   replica's lab link stalls: dispatches overlapping the window do not
///   complete until the window closes (and then re-serve), which is how
///   transient control-plane freezes present to a serving layer.
///
/// Both are plain data evaluated against the caller's virtual clock, so a
/// chaos scenario replays byte-identically at any worker-pool size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaChaos {
    /// Virtual time the replica dies, if scripted.
    pub kill_at_ns: Option<u64>,
    /// Half-open hang window `[from, until)`, if scripted.
    pub hang_window_ns: Option<(u64, u64)>,
}

impl ReplicaChaos {
    /// No scripted failures.
    pub fn none() -> Self {
        ReplicaChaos::default()
    }

    /// Scripts a kill at virtual time `at_ns`.
    #[must_use]
    pub fn kill_at(mut self, at_ns: u64) -> Self {
        self.kill_at_ns = Some(at_ns);
        self
    }

    /// Scripts a hang window `[from_ns, until_ns)`.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty or inverted.
    #[must_use]
    pub fn hang_between(mut self, from_ns: u64, until_ns: u64) -> Self {
        assert!(from_ns < until_ns, "hang window [{from_ns}, {until_ns}) is empty");
        self.hang_window_ns = Some((from_ns, until_ns));
        self
    }

    /// Whether the replica is dead at virtual time `now_ns`.
    pub fn is_dead(&self, now_ns: u64) -> bool {
        self.kill_at_ns.is_some_and(|k| now_ns >= k)
    }

    /// If a dispatch occupying `[start_ns, done_ns)` overlaps the hang
    /// window, the virtual time the link un-stalls; `None` when the
    /// dispatch is unaffected.
    pub fn hang_release(&self, start_ns: u64, done_ns: u64) -> Option<u64> {
        let (from, until) = self.hang_window_ns?;
        (start_ns < until && done_ns > from).then_some(until)
    }
}

/// The result of a [`probe_health`] sweep: how many probe reads came back
/// with all-finite powers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSample {
    /// Probe reads issued.
    pub reads: u64,
    /// Reads whose every detector power was finite.
    pub finite: u64,
}

impl HealthSample {
    /// Fraction of probe reads that came back clean (1.0 for zero reads:
    /// an unprobed chip is not evidence of sickness).
    pub fn finite_fraction(&self) -> f64 {
        if self.reads == 0 {
            1.0
        } else {
            self.finite as f64 / self.reads as f64
        }
    }

    /// Whether the clean-read fraction clears `min_finite_fraction`.
    pub fn passes(&self, min_finite_fraction: f64) -> bool {
        self.finite_fraction() >= min_finite_fraction
    }
}

/// Actively probes a chip's read path with `reads` seeded random inputs at
/// phase setting `theta`, counting how many readings come back all-finite.
///
/// This is the farm's out-of-band health check: dropped or hung reads
/// surface as NaN-poisoned powers, so a chip in a failure burst (or with a
/// dead link) shows a depressed finite fraction. The probe inputs derive
/// deterministically from `seed`, so a sweep is replayable; note that each
/// read *does* consume chip queries and advances the transient-fault
/// attempt counters, so account for the spend (`reads` queries) wherever
/// ledgers are reconciled. Do not interleave with a guarded training epoch
/// on the same chip.
pub fn probe_health<C: OnnChip>(chip: &C, theta: &RVector, reads: usize, seed: u64) -> HealthSample {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scratch = ChipScratch::new();
    let dim = chip.input_dim();
    let mut finite = 0u64;
    for _ in 0..reads {
        let x = photon_linalg::random::normal_cvector(dim, &mut rng);
        let x = x.normalized().unwrap_or(x);
        let powers = chip.forward_powers_into(&x, theta, &mut scratch);
        if powers.iter().all(|p| p.is_finite()) {
            finite += 1;
        }
    }
    HealthSample {
        reads: reads as u64,
        finite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_photonics::{ErrorModel, FabricatedChip};

    fn base_chip(seed: u64) -> (FaultyChip<FabricatedChip>, StdRng, RVector) {
        let mut rng = StdRng::seed_from_u64(seed);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let faulty = FaultyChip::new(
            chip,
            FaultPlan::new(7)
                .with_drift(DriftConfig::default())
                .with_transients(TransientConfig {
                    drop_prob: 0.1,
                    spike_prob: 0.1,
                    burst_prob: 0.1,
                    ..TransientConfig::default()
                })
                .with_stuck(StuckShifter {
                    index: 3,
                    value: 0.5,
                }),
        );
        let theta = faulty.init_params(&mut rng);
        (faulty, rng, theta)
    }

    #[test]
    fn passthrough_plan_matches_inner_chip() {
        let mut rng = StdRng::seed_from_u64(1);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let theta = chip.init_params(&mut rng);
        let x = CVector::basis(4, 0);
        let clean = chip.forward(&x, &theta);
        let faulty = FaultyChip::new(chip, FaultPlan::new(99));
        faulty.advance_to(5);
        let wrapped = faulty.forward(&x, &theta);
        assert_eq!(clean, wrapped);
        assert_eq!(faulty.fault_counts(), FaultCounts::default());
    }

    #[test]
    fn same_read_same_step_is_reproducible_and_reread_differs() {
        let (faulty, mut rng, theta) = base_chip(11);
        let x = photon_linalg::random::random_unit_cvector(4, &mut rng);
        faulty.advance_to(1);
        let a = faulty.forward_powers(&x, &theta);
        faulty.advance_to(2);
        let b = faulty.forward_powers(&x, &theta);
        faulty.advance_to(2); // no-op: already at step 2
        let b2 = faulty.forward_powers(&x, &theta);
        // Drift changed between steps 1 and 2, so the readings differ.
        assert_ne!(a.as_slice(), b.as_slice());
        // Re-reading within a step is a fresh attempt, not a cached value —
        // the phases agree but the transient decision is independent. Here
        // neither read faults, so only drift matters and they agree.
        if b.iter().all(|v| v.is_finite()) && b2.iter().all(|v| v.is_finite()) {
            assert_eq!(b.as_slice(), b2.as_slice());
        }
    }

    #[test]
    fn pinned_theta_reports_logical_not_effective_phases() {
        let (faulty, _rng, theta) = base_chip(17);
        assert!(faulty.pinned_theta().is_none());
        faulty.advance_to(3); // accumulate some drift first
        faulty.pin_compile_base(&theta);
        // The wrapper reports the deployed theta verbatim...
        assert_eq!(faulty.pinned_theta().unwrap(), theta);
        // ...while the inner chip was pinned at fault-effective phases
        // (drift plus the stuck shifter override), which must differ.
        let inner_pin = faulty.inner().pinned_theta().unwrap();
        assert_ne!(inner_pin, theta);
        assert_eq!(inner_pin.as_slice()[3], 0.5, "stuck override applied");
    }

    #[test]
    fn fault_schedule_replays_bitwise_from_seed() {
        let run = || {
            let (faulty, mut rng, theta) = base_chip(13);
            let mut bits = Vec::new();
            for step in 1..=10u64 {
                faulty.advance_to(step);
                let x = photon_linalg::random::random_unit_cvector(4, &mut rng);
                for v in faulty.forward_powers(&x, &theta).iter() {
                    bits.push(v.to_bits());
                }
            }
            (bits, faulty.fault_counts())
        };
        let (bits1, counts1) = run();
        let (bits2, counts2) = run();
        assert_eq!(bits1, bits2);
        assert_eq!(counts1, counts2);
    }

    #[test]
    fn transient_decisions_ignore_query_order() {
        // Two runs read the same three probes in opposite orders within one
        // step; each probe must receive the identical fault decision.
        let probes: Vec<CVector> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..3)
                .map(|_| photon_linalg::random::random_unit_cvector(4, &mut rng))
                .collect()
        };
        let read_all = |order: &[usize]| -> Vec<Vec<u64>> {
            let (faulty, _, theta) = base_chip(17);
            faulty.advance_to(1);
            let mut out = vec![Vec::new(); probes.len()];
            for &i in order {
                out[i] = faulty
                    .forward_powers(&probes[i], &theta)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
            }
            out
        };
        assert_eq!(read_all(&[0, 1, 2]), read_all(&[2, 1, 0]));
    }

    #[test]
    fn batched_reads_get_the_same_fault_decisions_as_serial_reads() {
        // The same probes within the same step must receive identical
        // transient decisions whether read one by one or as a batch.
        let probes: Vec<CVector> = {
            let mut rng = StdRng::seed_from_u64(6);
            (0..8)
                .map(|_| photon_linalg::random::random_unit_cvector(4, &mut rng))
                .collect()
        };
        let serial_pattern = {
            let (faulty, _, theta) = base_chip(19);
            faulty.advance_to(1);
            let mut scratch = ChipScratch::new();
            probes
                .iter()
                .map(|x| {
                    faulty
                        .forward_powers_into(x, &theta, &mut scratch)
                        .iter()
                        .any(|v| v.is_nan())
                })
                .collect::<Vec<bool>>()
        };
        let (faulty, _, theta) = base_chip(19);
        faulty.advance_to(1);
        let refs: Vec<&CVector> = probes.iter().collect();
        let mut scratch = BatchScratch::new();
        let batched = faulty.forward_powers_batch_into(&refs, &theta, &mut scratch);
        let batched_pattern: Vec<bool> = batched
            .iter()
            .map(|p| p.iter().any(|v| v.is_nan()))
            .collect();
        assert_eq!(serial_pattern, batched_pattern);
        assert_eq!(faulty.query_count(), probes.len() as u64);
    }

    #[test]
    fn batched_passthrough_matches_inner_batch() {
        let mut rng = StdRng::seed_from_u64(2);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let theta = chip.init_params(&mut rng);
        let xs: Vec<CVector> = (0..3)
            .map(|_| photon_linalg::random::random_unit_cvector(4, &mut rng))
            .collect();
        let refs: Vec<&CVector> = xs.iter().collect();
        let mut scratch = BatchScratch::new();
        let clean: Vec<CVector> = chip.forward_batch_into(&refs, &theta, &mut scratch).to_vec();
        let faulty = FaultyChip::new(chip, FaultPlan::new(77));
        faulty.advance_to(3);
        let mut scratch2 = BatchScratch::new();
        let wrapped = faulty.forward_batch_into(&refs, &theta, &mut scratch2);
        assert_eq!(clean.as_slice(), wrapped);
    }

    #[test]
    fn stuck_shifter_pins_its_phase() {
        let mut rng = StdRng::seed_from_u64(3);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(0.0), &mut rng);
        let theta = chip.init_params(&mut rng);
        let x = CVector::basis(4, 1);
        // Reference: evaluate the bare chip at theta with slot 2 overridden.
        let mut pinned = theta.clone();
        pinned.as_mut_slice()[2] = 1.25;
        let want = chip.forward(&x, &pinned);
        let faulty = FaultyChip::new(
            chip,
            FaultPlan::new(1).with_stuck(StuckShifter {
                index: 2,
                value: 1.25,
            }),
        );
        let got = faulty.forward(&x, &theta);
        assert_eq!(want, got);
    }

    #[test]
    fn drift_walks_and_stays_bounded() {
        let (faulty, _, _) = base_chip(23);
        assert_eq!(faulty.drift_snapshot().max_abs(), 0.0);
        faulty.advance_to(500);
        let d = faulty.drift_snapshot();
        assert!(d.max_abs() > 0.0, "drift should have moved");
        // OU is stationary with σ = 0.02: 10σ is an extremely safe bound.
        assert!(d.max_abs() < 0.2, "drift {:.3} out of bounds", d.max_abs());
        assert_eq!(faulty.current_step(), 500);
    }

    #[test]
    fn dropped_reads_are_nan_and_still_count_queries() {
        let mut rng = StdRng::seed_from_u64(29);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let faulty = FaultyChip::new(
            chip,
            FaultPlan::new(31).with_transients(TransientConfig {
                drop_prob: 1.0,
                ..TransientConfig::default()
            }),
        );
        let theta = faulty.init_params(&mut rng);
        let x = CVector::basis(4, 0);
        let p = faulty.forward_powers(&x, &theta);
        assert!(p.iter().all(|v| v.is_nan()));
        let y = faulty.forward(&x, &theta);
        assert!(y.iter().all(|z| z.re.is_nan() && z.im.is_nan()));
        assert_eq!(faulty.query_count(), 2);
        assert_eq!(faulty.fault_counts().dropped, 2);
    }

    #[test]
    fn hung_read_unblocks_on_abort_and_poisons() {
        let mut rng = StdRng::seed_from_u64(53);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let faulty = FaultyChip::new(
            chip,
            FaultPlan::new(55).with_hangs(HangConfig {
                prob: 1.0,
                max_block: Duration::from_secs(30), // "permanently" hung
            }),
        );
        let theta = faulty.init_params(&mut rng);
        let x = CVector::basis(4, 0);
        let flag = faulty.abort_flag();
        let t0 = Instant::now();
        let (p, fired) = photon_exec::run_guarded(
            Duration::from_millis(30),
            || flag.raise(),
            || faulty.forward_powers(&x, &theta),
        );
        assert!(fired, "the deadline must trip on a hung read");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "abort must beat the safety valve"
        );
        assert!(p.iter().all(|v| v.is_nan()), "cancelled read is poisoned");
        assert_eq!(faulty.fault_counts().hung, 1);
        // The query still hit the inner chip: the lab charged for it.
        assert_eq!(faulty.query_count(), 1);
        flag.clear();
    }

    #[test]
    fn hang_safety_valve_expires_without_watchdog() {
        let mut rng = StdRng::seed_from_u64(57);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let faulty = FaultyChip::new(
            chip,
            FaultPlan::new(59).with_hangs(HangConfig {
                prob: 1.0,
                max_block: Duration::from_millis(20),
            }),
        );
        let theta = faulty.init_params(&mut rng);
        let p = faulty.forward_powers(&CVector::basis(4, 1), &theta);
        assert!(p.iter().all(|v| v.is_nan()));
        assert_eq!(faulty.fault_counts().hung, 1);
    }

    #[test]
    fn spike_hits_exactly_one_port() {
        let mut rng = StdRng::seed_from_u64(41);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let theta = chip.init_params(&mut rng);
        let x = CVector::basis(4, 2);
        let clean = chip.forward_powers(&x, &theta);
        let faulty = FaultyChip::new(
            chip,
            FaultPlan::new(43).with_transients(TransientConfig {
                spike_prob: 1.0,
                spike_scale: 100.0,
                ..TransientConfig::default()
            }),
        );
        let spiked = faulty.forward_powers(&x, &theta);
        let changed: Vec<usize> = (0..4)
            .filter(|&i| (spiked.as_slice()[i] - clean.as_slice()[i]).abs() > 1e-12)
            .collect();
        assert_eq!(changed.len(), 1, "exactly one port spikes");
        let i = changed[0];
        assert!((spiked.as_slice()[i] / clean.as_slice()[i] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn failure_burst_concentrates_faults_in_windows() {
        let mut rng = StdRng::seed_from_u64(17);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        // A tiny base drop rate, boosted 200x inside the leading 2 steps of
        // every 10-step period: drops should land (almost) only in windows.
        let faulty = FaultyChip::new(
            chip,
            FaultPlan::new(91)
                .with_transients(TransientConfig {
                    drop_prob: 0.004,
                    ..TransientConfig::default()
                })
                .with_burst_profile(FailureBurst {
                    period: 10,
                    burst_len: 2,
                    multiplier: 200.0,
                }),
        );
        let theta = faulty.init_params(&mut rng);
        let mut in_window = 0u64;
        let mut outside = 0u64;
        for step in 0..40u64 {
            faulty.advance_to(step + 1);
            let before = faulty.fault_counts().dropped;
            for k in 0..8 {
                let _ = faulty.forward_powers(&CVector::basis(4, k % 4), &theta);
            }
            let new = faulty.fault_counts().dropped - before;
            if (step + 1) % 10 < 2 {
                in_window += new;
            } else {
                outside += new;
            }
        }
        assert!(
            in_window >= 8,
            "boosted windows must drop most reads (got {in_window})"
        );
        assert!(
            outside <= 2,
            "outside a window the base rate stays tiny (got {outside})"
        );
    }

    #[test]
    fn burst_boost_is_deterministic_and_identity_off_window() {
        let b = FailureBurst {
            period: 6,
            burst_len: 3,
            multiplier: 50.0,
        };
        for step in 0..24u64 {
            let expect = if step % 6 < 3 { 50.0 } else { 1.0 };
            assert_eq!(b.boost_at(step), expect);
        }
        // Degenerate profiles are inert, never a division by zero.
        let off = FailureBurst {
            period: 0,
            burst_len: 3,
            multiplier: 50.0,
        };
        assert_eq!(off.boost_at(5), 1.0);
    }

    #[test]
    fn probe_health_separates_clean_from_bursting_chips() {
        let mut rng = StdRng::seed_from_u64(23);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let theta = chip.init_params(&mut rng);

        let clean = FaultyChip::new(chip, FaultPlan::new(3));
        let sample = probe_health(&clean, &theta, 32, 11);
        assert_eq!(sample.reads, 32);
        assert_eq!(sample.finite, 32, "a passthrough chip probes clean");
        assert!(sample.passes(1.0));

        let mut rng2 = StdRng::seed_from_u64(23);
        let chip2 = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng2);
        let sick = FaultyChip::new(
            chip2,
            FaultPlan::new(5).with_transients(TransientConfig {
                drop_prob: 0.5,
                ..TransientConfig::default()
            }),
        );
        let sample = probe_health(&sick, &theta, 64, 11);
        assert!(
            !sample.passes(0.9),
            "a 50%-drop chip cannot probe 90% clean: {sample:?}"
        );
        // The probe is replayable: same seed, same verdict.
        let sick2 = FaultyChip::new(
            FabricatedChip::fabricate(
                &arch,
                &ErrorModel::with_beta(1.0),
                &mut StdRng::seed_from_u64(23),
            ),
            FaultPlan::new(5).with_transients(TransientConfig {
                drop_prob: 0.5,
                ..TransientConfig::default()
            }),
        );
        assert_eq!(probe_health(&sick2, &theta, 64, 11), sample);
        // Probe reads are real chip queries and must be accounted for.
        assert_eq!(sick2.query_count(), 64);
    }

    #[test]
    fn zero_read_probe_is_vacuously_healthy() {
        let s = HealthSample { reads: 0, finite: 0 };
        assert_eq!(s.finite_fraction(), 1.0);
        assert!(s.passes(1.0));
    }
}
