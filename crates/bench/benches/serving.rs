//! Serving-path macro benchmark: the discrete-event simulator's
//! {poisson, bursty} × {uncoalesced, coalesced} grid, plus a wall-clock
//! measurement of the real pinned serving path that keeps the simulator's
//! cost model honest.
//!
//! The simulated arms answer the capacity question (saturation throughput
//! and tail latency under open-loop overload, in *virtual* time — bitwise
//! replayable, host-independent). The measured arm times
//! `FabricatedChip::serve_pinned_batch_into` at batch 1 vs batch 16 on the
//! same 8x8 mesh the cost model was calibrated on, so the
//! per-call-cost-amortization claim is checked against real hardware every
//! time this bench runs. Results land in `BENCH_serving.json` at the
//! workspace root; ci.sh gates coalesced ≥ uncoalesced.

use std::io::Write as _;

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_farm::CoalescePolicy;
use photon_linalg::CVector;
use photon_photonics::{Architecture, BatchScratch, ErrorModel, FabricatedChip};
use photon_sim::{run, ArrivalProcess, ServingReport, SimConfig, TenantLoad};

const DIM: usize = 8;
const ROOT_SEED: u64 = 8080;
/// Virtual arrival window: 50 ms of open-loop traffic.
const WINDOW_NS: u64 = 50_000_000;
const WORKERS: usize = 2;
const QUEUE_CAP: usize = 512;
const MAX_BATCH: usize = 16;
const MAX_WAIT_NS: u64 = 100_000;

const WORKLOADS: [(&str, ArrivalProcess); 2] = [
    // Rates are chosen to overdrive the uncoalesced capacity (~130k rps
    // per worker at the calibrated model) hard enough that the coalesced
    // arm is also measured at saturation, not arrival-limited.
    (
        "poisson",
        ArrivalProcess::Poisson {
            rate_hz: 1_000_000.0,
        },
    ),
    (
        "bursty",
        ArrivalProcess::Bursty {
            on_rate_hz: 800_000.0,
            off_rate_hz: 20_000.0,
            mean_on_ns: 5_000_000.0,
            mean_off_ns: 5_000_000.0,
        },
    ),
];

fn simulate(workload: ArrivalProcess, name: &str, coalesced: bool) -> ServingReport {
    let policy = if coalesced {
        CoalescePolicy::new(MAX_BATCH, MAX_WAIT_NS)
    } else {
        CoalescePolicy::uncoalesced()
    };
    let mode = if coalesced { "coalesced" } else { "uncoalesced" };
    let cfg = SimConfig::new(ROOT_SEED, WINDOW_NS)
        .with_label(&format!("{name}/{mode}"))
        .with_workers(WORKERS)
        .with_coalescer(policy)
        .with_tenant(TenantLoad::new(name, workload).with_queue_cap(QUEUE_CAP));
    run(&cfg)
}

/// Wall-clock ground truth for the cost model: the real pinned serving
/// path at batch 1 vs batch 16 (same mesh size the model was calibrated
/// on). Wall time is allowed *here* — never inside `crates/sim`.
fn bench_real_serving(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let arch = Architecture::single_mesh(DIM, DIM).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let theta = chip.init_params(&mut rng);
    chip.pin_compile_base(&theta);
    let xs: Vec<CVector> = (0..MAX_BATCH)
        .map(|_| photon_linalg::random::normal_cvector(DIM, &mut rng))
        .collect();
    let refs: Vec<&CVector> = xs.iter().collect();

    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    group.bench_function("serve-b1", |b| {
        let mut scratch = BatchScratch::new();
        b.iter(|| {
            let out = chip
                .serve_pinned_batch_into(&refs[..1], &mut scratch)
                .unwrap();
            out[0].iter().map(|z| z.norm_sqr()).sum::<f64>()
        })
    });
    group.bench_function("serve-b16", |b| {
        let mut scratch = BatchScratch::new();
        b.iter(|| {
            let out = chip.serve_pinned_batch_into(&refs, &mut scratch).unwrap();
            out.iter()
                .map(|y| y.iter().map(|z| z.norm_sqr()).sum::<f64>())
                .sum::<f64>()
        })
    });
    group.finish();
}

fn write_report(c: &Criterion) -> std::io::Result<()> {
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let kernel = photon_linalg::kernel_tier().name();

    let mut rows = String::new();
    let mut speedups = String::new();
    for (name, workload) in WORKLOADS {
        let un = simulate(workload, name, false);
        let co = simulate(workload, name, true);
        for report in [&un, &co] {
            let mode = if report.max_batch > 1 { "coalesced" } else { "uncoalesced" };
            let agg = &report.aggregate;
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            // BENCH_parallel honesty convention: every row names the
            // kernel tier and the host's available parallelism.
            rows.push_str(&format!(
                "    {{\"workload\": \"{name}\", \"mode\": \"{mode}\", \
                 \"throughput_rps\": {:.1}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
                 \"p999_ns\": {:.1}, \"arrivals\": {}, \"completed\": {}, \"shed\": {}, \
                 \"mean_batch\": {:.3}, \"peak_queue_depth\": {}, \
                 \"kernel\": \"{kernel}\", \"host_available_parallelism\": {host_threads}}}",
                agg.throughput_rps,
                agg.p50_ns,
                agg.p99_ns,
                agg.p999_ns,
                agg.arrivals,
                agg.completed,
                agg.shed,
                report.mean_batch,
                agg.peak_queue_depth,
            ));
        }
        if !speedups.is_empty() {
            speedups.push_str(", ");
        }
        speedups.push_str(&format!(
            "\"{name}\": {:.3}",
            co.aggregate.throughput_rps / un.aggregate.throughput_rps
        ));
    }

    // Measured wall-clock check of the amortization claim.
    let find = |arm: &str| {
        let id = format!("serving/{arm}");
        c.measurements().iter().find(move |m| m.id == id)
    };
    let measured = match (find("serve-b1"), find("serve-b16")) {
        (Some(b1), Some(b16)) => {
            let per_req_b1 = b1.mean.as_nanos() as f64;
            let per_req_b16 = b16.mean.as_nanos() as f64 / MAX_BATCH as f64;
            format!(
                "{{\"serve_b1_ns\": {}, \"serve_b16_ns\": {}, \
                 \"measured_per_request_amortization\": {:.3}}}",
                b1.mean.as_nanos(),
                b16.mean.as_nanos(),
                per_req_b1 / per_req_b16.max(1.0)
            )
        }
        _ => "null".to_string(),
    };

    let json = format!(
        "{{\n  \"bench\": \"serving_sim\",\n  \"mesh\": \"{DIM}x{DIM} Clements\",\n  \
         \"root_seed\": {ROOT_SEED},\n  \"window_ns\": {WINDOW_NS},\n  \
         \"workers\": {WORKERS},\n  \"queue_cap\": {QUEUE_CAP},\n  \
         \"coalescer\": {{\"max_batch\": {MAX_BATCH}, \"max_wait_ns\": {MAX_WAIT_NS}}},\n  \
         \"cost_model\": {{\"compile_ns\": 7400, \"per_sample_ns\": 250, \
         \"source\": \"BENCH_gemm.json 8x8 compiled arm (32 probes x 16-sample batches)\"}},\n  \
         \"kernel\": \"{kernel}\",\n  \"host_available_parallelism\": {host_threads},\n  \
         \"note\": \"simulated arms are open-loop overload in virtual time (bitwise \
         replayable, host-independent); 'measured' is real wall time of the pinned \
         serving path at batch 1 vs 16 on this host, sanity-checking the cost model's \
         per-call amortization\",\n  \
         \"measured\": {measured},\n  \
         \"coalescing_speedup\": {{{speedups}}},\n  \
         \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_real_serving(&mut c);
    if let Err(e) = write_report(&c) {
        eprintln!("serving: failed to write BENCH_serving.json: {e}");
    }
}
