//! Serving-path macro benchmark: the discrete-event simulator's
//! {poisson, bursty} × {uncoalesced, coalesced} grid, plus a wall-clock
//! measurement of the real pinned serving path that keeps the simulator's
//! cost model honest.
//!
//! The simulated arms answer the capacity question (saturation throughput
//! and tail latency under open-loop overload, in *virtual* time — bitwise
//! replayable, host-independent). The measured arm times
//! `FabricatedChip::serve_pinned_batch_into` at batch 1 vs batch 16 on the
//! same 8x8 mesh the cost model was calibrated on, so the
//! per-call-cost-amortization claim is checked against real hardware every
//! time this bench runs. Results land in `BENCH_serving.json` at the
//! workspace root; ci.sh gates coalesced ≥ uncoalesced.

use std::io::Write as _;

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_farm::{CoalescePolicy, HedgePolicy};
use photon_faults::ReplicaChaos;
use photon_linalg::CVector;
use photon_photonics::{Architecture, BatchScratch, ErrorModel, FabricatedChip};
use photon_sim::{
    run, run_resilient, ArrivalProcess, ReplicaSpec, ResilienceReport, ResilientConfig,
    ServingReport, SimConfig, TenantLoad,
};

const DIM: usize = 8;
const ROOT_SEED: u64 = 8080;
/// Virtual arrival window: 50 ms of open-loop traffic.
const WINDOW_NS: u64 = 50_000_000;
const WORKERS: usize = 2;
const QUEUE_CAP: usize = 512;
const MAX_BATCH: usize = 16;
const MAX_WAIT_NS: u64 = 100_000;

const WORKLOADS: [(&str, ArrivalProcess); 2] = [
    // Rates are chosen to overdrive the uncoalesced capacity (~130k rps
    // per worker at the calibrated model) hard enough that the coalesced
    // arm is also measured at saturation, not arrival-limited.
    (
        "poisson",
        ArrivalProcess::Poisson {
            rate_hz: 1_000_000.0,
        },
    ),
    (
        "bursty",
        ArrivalProcess::Bursty {
            on_rate_hz: 800_000.0,
            off_rate_hz: 20_000.0,
            mean_on_ns: 5_000_000.0,
            mean_off_ns: 5_000_000.0,
        },
    ),
];

fn simulate(workload: ArrivalProcess, name: &str, coalesced: bool) -> ServingReport {
    let policy = if coalesced {
        CoalescePolicy::new(MAX_BATCH, MAX_WAIT_NS)
    } else {
        CoalescePolicy::uncoalesced()
    };
    let mode = if coalesced { "coalesced" } else { "uncoalesced" };
    let cfg = SimConfig::new(ROOT_SEED, WINDOW_NS)
        .with_label(&format!("{name}/{mode}"))
        .with_workers(WORKERS)
        .with_coalescer(policy)
        .with_tenant(TenantLoad::new(name, workload).with_queue_cap(QUEUE_CAP));
    run(&cfg)
}

/// The resilience grid: the same three-replica chaos scenario the e2e
/// tests run (one replica killed at 5 ms, one hung 4–8 ms), simulated as
/// healthy baseline, resilient arm (breakers + hedging + brownout +
/// deadlines), and no-resilience control. Virtual time only.
fn simulate_resilience(arm: &str) -> ResilienceReport {
    let faulty = arm != "healthy-baseline";
    let beta_chaos = if faulty {
        ReplicaChaos::none().kill_at(5_000_000)
    } else {
        ReplicaChaos::none()
    };
    let gamma_chaos = if faulty {
        ReplicaChaos::none().hang_between(4_000_000, 8_000_000)
    } else {
        ReplicaChaos::none()
    };
    let cfg = ResilientConfig::new(ROOT_SEED, 20_000_000)
        .with_label(arm)
        .with_replica(ReplicaSpec::clean("alpha"))
        .with_replica(ReplicaSpec::clean("beta").with_chaos(beta_chaos))
        .with_replica(ReplicaSpec::clean("gamma").with_chaos(gamma_chaos))
        .with_tenant(TenantLoad::new(
            "steady",
            ArrivalProcess::Poisson { rate_hz: 60_000.0 },
        ))
        .with_tenant(TenantLoad::new(
            "bursty",
            ArrivalProcess::Bursty {
                on_rate_hz: 120_000.0,
                off_rate_hz: 10_000.0,
                mean_on_ns: 3_000_000.0,
                mean_off_ns: 4_000_000.0,
            },
        ))
        .with_coalescer(CoalescePolicy::new(MAX_BATCH, MAX_WAIT_NS))
        .with_default_deadline_ns(2_000_000)
        .with_hedge(Some(HedgePolicy {
            quantile: 0.5,
            min_delay_ns: 50_000,
            window: 256,
            min_samples: 16,
        }));
    if arm == "control-faults" {
        run_resilient(&cfg.without_resilience())
    } else {
        run_resilient(&cfg)
    }
}

/// Wall-clock ground truth for the cost model: the real pinned serving
/// path at batch 1 vs batch 16 (same mesh size the model was calibrated
/// on). Wall time is allowed *here* — never inside `crates/sim`.
fn bench_real_serving(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let arch = Architecture::single_mesh(DIM, DIM).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let theta = chip.init_params(&mut rng);
    chip.pin_compile_base(&theta);
    let xs: Vec<CVector> = (0..MAX_BATCH)
        .map(|_| photon_linalg::random::normal_cvector(DIM, &mut rng))
        .collect();
    let refs: Vec<&CVector> = xs.iter().collect();

    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    group.bench_function("serve-b1", |b| {
        let mut scratch = BatchScratch::new();
        b.iter(|| {
            let out = chip
                .serve_pinned_batch_into(&refs[..1], &mut scratch)
                .unwrap();
            out[0].iter().map(|z| z.norm_sqr()).sum::<f64>()
        })
    });
    group.bench_function("serve-b16", |b| {
        let mut scratch = BatchScratch::new();
        b.iter(|| {
            let out = chip.serve_pinned_batch_into(&refs, &mut scratch).unwrap();
            out.iter()
                .map(|y| y.iter().map(|z| z.norm_sqr()).sum::<f64>())
                .sum::<f64>()
        })
    });
    group.finish();
}

fn write_report(c: &Criterion) -> std::io::Result<()> {
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let kernel = photon_linalg::kernel_tier().name();

    let mut rows = String::new();
    let mut speedups = String::new();
    for (name, workload) in WORKLOADS {
        let un = simulate(workload, name, false);
        let co = simulate(workload, name, true);
        for report in [&un, &co] {
            let mode = if report.max_batch > 1 { "coalesced" } else { "uncoalesced" };
            let agg = &report.aggregate;
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            // BENCH_parallel honesty convention: every row names the
            // kernel tier and the host's available parallelism.
            rows.push_str(&format!(
                "    {{\"workload\": \"{name}\", \"mode\": \"{mode}\", \
                 \"throughput_rps\": {:.1}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
                 \"p999_ns\": {:.1}, \"arrivals\": {}, \"completed\": {}, \"shed\": {}, \
                 \"mean_batch\": {:.3}, \"peak_queue_depth\": {}, \
                 \"kernel\": \"{kernel}\", \"host_available_parallelism\": {host_threads}}}",
                agg.throughput_rps,
                agg.p50_ns,
                agg.p99_ns,
                agg.p999_ns,
                agg.arrivals,
                agg.completed,
                agg.shed,
                report.mean_batch,
                agg.peak_queue_depth,
            ));
        }
        if !speedups.is_empty() {
            speedups.push_str(", ");
        }
        speedups.push_str(&format!(
            "\"{name}\": {:.3}",
            co.aggregate.throughput_rps / un.aggregate.throughput_rps
        ));
    }

    // The resilience grid: healthy baseline vs resilient arm vs control
    // under the scripted kill + hang (same scenario as the chaos tests).
    let healthy = simulate_resilience("healthy-baseline");
    let resilient = simulate_resilience("resilient-faults");
    let control = simulate_resilience("control-faults");
    let mut resilience_rows = String::new();
    for report in [&healthy, &resilient, &control] {
        let agg = &report.aggregate;
        if !resilience_rows.is_empty() {
            resilience_rows.push_str(",\n");
        }
        resilience_rows.push_str(&format!(
            "    {{\"arm\": \"{}\", \"arrivals\": {}, \"completed\": {}, \"shed\": {}, \
             \"expired\": {}, \"lost\": {}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
             \"p999_ns\": {:.1}, \"throughput_rps\": {:.1}, \"hedges_fired\": {}, \
             \"hedge_wins\": {}, \"duplicates\": {}, \"breaker_opens\": {}, \
             \"tier_downshifts\": {}, \"kernel\": \"{kernel}\", \
             \"host_available_parallelism\": {host_threads}}}",
            report.label,
            agg.arrivals,
            agg.completed,
            agg.shed,
            agg.expired,
            report.lost(),
            agg.p50_ns,
            agg.p99_ns,
            agg.p999_ns,
            agg.throughput_rps,
            report.hedges_fired,
            report.hedge_wins,
            report.duplicates,
            report
                .replicas
                .iter()
                .flat_map(|r| &r.breaker_transitions)
                .filter(|t| t.to == photon_farm::BreakerState::Open)
                .count(),
            report.replicas.iter().map(|r| r.tier_transitions).sum::<u64>(),
        ));
    }
    let resilience_summary = format!(
        "{{\"p99_vs_healthy\": {:.3}, \"bound\": 2.0, \"bound_held\": {}, \
         \"resilient_lost\": {}, \"control_lost\": {}, \"sheds_less_than_control\": {}}}",
        resilient.aggregate.p99_ns / healthy.aggregate.p99_ns.max(1.0),
        resilient.aggregate.p99_ns <= 2.0 * healthy.aggregate.p99_ns,
        resilient.lost(),
        control.lost(),
        resilient.lost() < control.lost(),
    );

    // Measured wall-clock check of the amortization claim.
    let find = |arm: &str| {
        let id = format!("serving/{arm}");
        c.measurements().iter().find(move |m| m.id == id)
    };
    let measured = match (find("serve-b1"), find("serve-b16")) {
        (Some(b1), Some(b16)) => {
            let per_req_b1 = b1.mean.as_nanos() as f64;
            let per_req_b16 = b16.mean.as_nanos() as f64 / MAX_BATCH as f64;
            format!(
                "{{\"serve_b1_ns\": {}, \"serve_b16_ns\": {}, \
                 \"measured_per_request_amortization\": {:.3}}}",
                b1.mean.as_nanos(),
                b16.mean.as_nanos(),
                per_req_b1 / per_req_b16.max(1.0)
            )
        }
        _ => "null".to_string(),
    };

    let json = format!(
        "{{\n  \"bench\": \"serving_sim\",\n  \"mesh\": \"{DIM}x{DIM} Clements\",\n  \
         \"root_seed\": {ROOT_SEED},\n  \"window_ns\": {WINDOW_NS},\n  \
         \"workers\": {WORKERS},\n  \"queue_cap\": {QUEUE_CAP},\n  \
         \"coalescer\": {{\"max_batch\": {MAX_BATCH}, \"max_wait_ns\": {MAX_WAIT_NS}}},\n  \
         \"cost_model\": {{\"compile_ns\": 7400, \"per_sample_ns\": 250, \
         \"source\": \"BENCH_gemm.json 8x8 compiled arm (32 probes x 16-sample batches)\"}},\n  \
         \"kernel\": \"{kernel}\",\n  \"host_available_parallelism\": {host_threads},\n  \
         \"note\": \"simulated arms are open-loop overload in virtual time (bitwise \
         replayable, host-independent); 'measured' is real wall time of the pinned \
         serving path at batch 1 vs 16 on this host, sanity-checking the cost model's \
         per-call amortization\",\n  \
         \"measured\": {measured},\n  \
         \"coalescing_speedup\": {{{speedups}}},\n  \
         \"results\": [\n{rows}\n  ],\n  \
         \"resilience_note\": \"three replicas behind one endpoint, replica beta killed \
         at 5 ms and gamma hung 4-8 ms of a 20 ms window; the resilient arm runs circuit \
         breakers + p50-delay hedged re-dispatch + brownout tier ladder + 2 ms deadlines, \
         the control arm runs only the dispatch watchdog and deadlines\",\n  \
         \"resilience_summary\": {resilience_summary},\n  \
         \"resilience\": [\n{resilience_rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_real_serving(&mut c);
    if let Err(e) = write_report(&c) {
        eprintln!("serving: failed to write BENCH_serving.json: {e}");
    }
}
