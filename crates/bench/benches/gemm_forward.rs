//! Compiled-batched vs. interpreted probe evaluation — the amortization the
//! compiled-unitary path buys on a single thread.
//!
//! Both arms evaluate the same `Q = 32` perturbed parameter settings on the
//! same `B = 16` sample batch of an 8×8 Clements chip. The interpreted arm
//! walks the op list per sample (`O(ops·B)` per probe, trig per op per
//! sample); the compiled arm compiles each probe's unitary once
//! (`O(ops·N)`) and applies it batch-wide as one GEMM (`O(N²·B)`). Pool
//! size is 1 everywhere: the measured speedup is compile amortization, not
//! thread parallelism.
//!
//! Like `probe_eval`, this bench has a custom `main` that writes the raw
//! numbers to `BENCH_gemm.json` at the workspace root.

use std::io::Write as _;

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_core::ClassificationHead;
use photon_data::{Dataset, GaussianClusters};
use photon_linalg::random::normal_rvector;
use photon_linalg::{CVector, RVector};
use photon_photonics::{Architecture, BatchScratch, ChipScratch, ErrorModel, FabricatedChip};

const DIM: usize = 8;
const Q: usize = 32;
const BATCH: usize = 16;

fn setup() -> (FabricatedChip, Dataset, ClassificationHead, RVector) {
    let mut rng = StdRng::seed_from_u64(11);
    let arch = Architecture::single_mesh(DIM, DIM).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let data = GaussianClusters::new(DIM, DIM, 0.1)
        .generate(BATCH, &mut rng)
        .unwrap();
    let head = ClassificationHead::new(DIM, DIM, 10.0).unwrap();
    let theta = chip.init_params(&mut rng);
    (chip, data, head, theta)
}

/// The probe settings a ZO sweep would evaluate: `theta + mu * delta_q`.
fn probe_thetas(theta: &RVector, rng: &mut StdRng) -> Vec<RVector> {
    let mu = 1e-3 / (theta.len() as f64).sqrt();
    (0..Q)
        .map(|_| {
            let delta = normal_rvector(theta.len(), rng);
            let mut t = theta.clone();
            for k in 0..t.len() {
                t[k] += mu * delta[k];
            }
            t
        })
        .collect()
}

fn bench_gemm_forward(c: &mut Criterion) {
    let (chip, data, head, theta) = setup();
    let mut rng = StdRng::seed_from_u64(13);
    let thetas = probe_thetas(&theta, &mut rng);
    let xs: Vec<&CVector> = (0..BATCH).map(|i| data.sample(i).0).collect();

    let mut group = c.benchmark_group("gemm_forward");
    group.sample_size(15);

    group.bench_function("interpreted", |b| {
        let mut scratch = ChipScratch::new();
        b.iter(|| {
            let mut acc = 0.0;
            for t in &thetas {
                for i in 0..BATCH {
                    let (x, label) = data.sample(i);
                    let y = chip.forward_into(x, t, &mut scratch);
                    acc += head.loss(y, label);
                }
            }
            acc
        })
    });

    group.bench_function("compiled", |b| {
        let mut scratch = BatchScratch::new();
        b.iter(|| {
            let mut acc = 0.0;
            for t in &thetas {
                let ys = chip.forward_batch_into(&xs, t, &mut scratch);
                for (i, y) in ys.iter().enumerate() {
                    acc += head.loss(y, data.sample(i).1);
                }
            }
            acc
        })
    });

    group.finish();
}

fn write_report(c: &Criterion) -> std::io::Result<()> {
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let find = |path: &str| {
        let id = format!("gemm_forward/{path}");
        c.measurements().iter().find(move |m| m.id == id)
    };
    let mut entries = String::new();
    for path in ["interpreted", "compiled"] {
        if let Some(m) = find(path) {
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            entries.push_str(&format!(
                "    {{\"path\": \"{path}\", \"mean_ns\": {}, \"min_ns\": {}}}",
                m.mean.as_nanos(),
                m.min.as_nanos()
            ));
        }
    }
    let speedup = match (find("interpreted"), find("compiled")) {
        (Some(interp), Some(comp)) if comp.mean.as_nanos() > 0 => {
            interp.mean.as_nanos() as f64 / comp.mean.as_nanos() as f64
        }
        _ => f64::NAN,
    };
    // Hand-rolled JSON: the workspace deliberately has no serde dependency.
    let json = format!(
        "{{\n  \"bench\": \"gemm_forward\",\n  \"mesh\": \"{DIM}x{DIM} Clements\",\n  \
         \"q\": {Q},\n  \"batch\": {BATCH},\n  \"host_available_parallelism\": {host_threads},\n  \
         \"speedup_compiled_vs_interpreted\": {speedup:.3},\n  \"note\": \"single-thread \
         comparison: the speedup is per-probe compile amortization over the batch, not \
         thread parallelism; see DESIGN.md\",\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    // benches run with CWD = crate root (crates/bench); write to workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_gemm_forward(&mut c);
    if let Err(e) = write_report(&c) {
        eprintln!("gemm_forward: failed to write BENCH_gemm.json: {e}");
    }
}
