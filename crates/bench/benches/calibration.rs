//! Criterion kernels: calibration cost (measurement sweep + Gauss-Newton).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_calib::{calibrate, measure_chip, CalibrationSettings, LmSettings, ProbePlan};
use photon_photonics::{Architecture, ErrorModel, FabricatedChip};

fn bench_measurement_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("measure");
    for k in [4usize, 8] {
        let mut rng = StdRng::seed_from_u64(11);
        let arch = Architecture::single_mesh(k, k).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let plan = ProbePlan::for_chip(&chip, true, 8, 3, &mut rng);
        group.bench_with_input(BenchmarkId::new("probe_sweep", k), &k, |b, _| {
            b.iter(|| measure_chip(&chip, std::hint::black_box(&plan)))
        });
    }
    group.finish();
}

fn bench_full_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibrate");
    group.sample_size(10);
    for k in [4usize, 6] {
        group.bench_with_input(BenchmarkId::new("lm_fit", k), &k, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(12);
                let arch = Architecture::single_mesh(k, 2).unwrap();
                let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
                let settings = CalibrationSettings {
                    random_inputs: 4,
                    num_settings: 2,
                    lm: LmSettings {
                        max_iters: 3,
                        ..LmSettings::default()
                    },
                    ..CalibrationSettings::default()
                };
                calibrate(&chip, &settings, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_measurement_sweep, bench_full_calibration);
criterion_main!(benches);
