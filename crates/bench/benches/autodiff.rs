//! Criterion kernels: JVP/VJP and Fisher-product costs — the model-side
//! overhead LCNG pays per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_linalg::random::{normal_cvector, normal_rvector};
use photon_photonics::{fisher_vector_product, Architecture};

fn bench_jvp_vjp(c: &mut Criterion) {
    let mut group = c.benchmark_group("autodiff");
    for k in [8usize, 16] {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Architecture::two_mesh_classifier(k, k)
            .unwrap()
            .build_ideal();
        let theta = net.init_params(&mut rng);
        let x = normal_cvector(k, &mut rng);
        let dtheta = normal_rvector(net.param_count(), &mut rng);
        let (_, tape) = net.forward_tape(&x, &theta);
        let g = normal_cvector(k, &mut rng);
        let zero = photon_linalg::CVector::zeros(k);

        group.bench_with_input(BenchmarkId::new("forward_tape", k), &k, |b, _| {
            b.iter(|| net.forward_tape(std::hint::black_box(&x), &theta))
        });
        group.bench_with_input(BenchmarkId::new("jvp", k), &k, |b, _| {
            b.iter(|| net.jvp(&tape, &theta, std::hint::black_box(&zero), &dtheta))
        });
        group.bench_with_input(BenchmarkId::new("vjp", k), &k, |b, _| {
            b.iter(|| net.vjp(&tape, &theta, std::hint::black_box(&g)))
        });
    }
    group.finish();
}

fn bench_fisher_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("fisher");
    group.sample_size(20);
    for k in [8usize, 16] {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Architecture::two_mesh_classifier(k, k)
            .unwrap()
            .build_ideal();
        let theta = net.init_params(&mut rng);
        let inputs: Vec<_> = (0..4).map(|_| normal_cvector(k, &mut rng)).collect();
        let v = normal_rvector(net.param_count(), &mut rng);
        group.bench_with_input(BenchmarkId::new("fvp_4_inputs", k), &k, |b, _| {
            b.iter(|| fisher_vector_product(&net, &theta, &inputs, std::hint::black_box(&v)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_jvp_vjp, bench_fisher_product);
criterion_main!(benches);
