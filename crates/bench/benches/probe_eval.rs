//! Serial vs. worker-pool throughput of the ZO probe sweep — the hot loop of
//! every fine-tuning iteration (q batch-loss evaluations per step).
//!
//! Unlike the other benches this one has a custom `main`: after the criterion
//! pass it writes the raw numbers (mean/min ns per pool size, the measured
//! speedup at 4 threads, and the host's available parallelism) to
//! `BENCH_parallel.json` at the workspace root so results land in the repo
//! without any manual copying.

use std::io::Write as _;

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_core::{chip_batch_loss_pooled, ClassificationHead};
use photon_data::{Dataset, GaussianClusters};
use photon_exec::ExecPool;
use photon_linalg::RVector;
use photon_opt::{estimate_gradient_pooled, Perturbation, ZoSettings};
use photon_photonics::{Architecture, ErrorModel, FabricatedChip};

const DIM: usize = 8;
const Q: usize = 32;
const BATCH: usize = 16;
const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

fn setup() -> (FabricatedChip, Dataset, ClassificationHead, RVector) {
    let mut rng = StdRng::seed_from_u64(11);
    let arch = Architecture::single_mesh(DIM, DIM).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let data = GaussianClusters::new(DIM, DIM, 0.1)
        .generate(BATCH, &mut rng)
        .unwrap();
    let head = ClassificationHead::new(DIM, DIM, 10.0).unwrap();
    let theta = chip.init_params(&mut rng);
    (chip, data, head, theta)
}

/// Threads the host can actually run concurrently. Pool sizes above this
/// oversubscribe the machine: their timings measure scheduler churn, not
/// parallel speedup, so the bench skips them instead of publishing numbers
/// that look like a scaling regression.
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn bench_probe_eval(c: &mut Criterion) {
    let (chip, data, head, theta) = setup();
    let indices: Vec<usize> = (0..BATCH).collect();
    let serial = ExecPool::serial();
    let loss = |t: &RVector| chip_batch_loss_pooled(&chip, &data, &indices, &head, t, &serial);
    let zo = ZoSettings {
        q: Q,
        mu: 1e-3 / (theta.len() as f64).sqrt(),
        lambda: 1.0 / theta.len() as f64,
    };

    let host_threads = host_parallelism();
    let mut group = c.benchmark_group("probe_eval");
    group.sample_size(15);
    for threads in POOL_SIZES {
        if threads > host_threads {
            eprintln!(
                "probe_eval: skipping threads_{threads} \
                 (host_available_parallelism = {host_threads})"
            );
            continue;
        }
        let pool = ExecPool::new(threads);
        group.bench_function(format!("threads_{threads}"), |b| {
            let mut rng = StdRng::seed_from_u64(13);
            let base = loss(&theta);
            b.iter(|| {
                estimate_gradient_pooled(
                    &loss,
                    &theta,
                    base,
                    &zo,
                    &Perturbation::Gaussian,
                    &pool,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn write_report(c: &Criterion) -> std::io::Result<()> {
    let host_threads = host_parallelism();
    let find = |threads: usize| {
        let id = format!("probe_eval/threads_{threads}");
        c.measurements().iter().find(|m| m.id == id)
    };
    let mut entries = String::new();
    let mut skipped = Vec::new();
    for threads in POOL_SIZES {
        if threads > host_threads {
            skipped.push(threads.to_string());
            continue;
        }
        if let Some(m) = find(threads) {
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            // host_available_parallelism rides along on every row so a
            // reader of a single entry knows what hardware bounded it.
            entries.push_str(&format!(
                "    {{\"threads\": {threads}, \"mean_ns\": {}, \"min_ns\": {}, \
                 \"host_available_parallelism\": {host_threads}}}",
                m.mean.as_nanos(),
                m.min.as_nanos()
            ));
        }
    }
    let speedup_4 = match (find(1), find(4)) {
        (Some(serial), Some(pooled)) if pooled.mean.as_nanos() > 0 => {
            format!(
                "{:.3}",
                serial.mean.as_nanos() as f64 / pooled.mean.as_nanos() as f64
            )
        }
        // threads_4 skipped (host too small) or not yet measured.
        _ => "null".to_string(),
    };
    let note = if skipped.is_empty() {
        "all configured pool sizes fit within host_available_parallelism".to_string()
    } else {
        format!(
            "pool sizes [{}] exceed host_available_parallelism ({host_threads}) and were \
             skipped: oversubscribed timings measure scheduler churn, not speedup",
            skipped.join(", ")
        )
    };
    // Hand-rolled JSON: the workspace deliberately has no serde dependency.
    let json = format!(
        "{{\n  \"bench\": \"probe_eval\",\n  \"mesh\": \"{DIM}x{DIM} Clements\",\n  \
         \"q\": {Q},\n  \"batch\": {BATCH},\n  \"host_available_parallelism\": {host_threads},\n  \
         \"speedup_at_4_threads\": {speedup_4},\n  \"note\": \"{note}\",\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    // benches run with CWD = crate root (crates/bench); write to workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_probe_eval(&mut c);
    if let Err(e) = write_report(&c) {
        eprintln!("probe_eval: failed to write BENCH_parallel.json: {e}");
    }
}
