//! Criterion kernels: per-iteration cost of the compared optimizers on a
//! shared synthetic chip loss.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_linalg::random::normal_cvector;
use photon_opt::{
    estimate_gradient, lcng_direction, CmaEs, LcngSettings, MetricSource, Perturbation, ZoSettings,
};
use photon_photonics::{Architecture, ErrorModel, FabricatedChip};

fn chip_setup(
    k: usize,
) -> (
    FabricatedChip,
    photon_linalg::RVector,
    photon_linalg::CVector,
) {
    let mut rng = StdRng::seed_from_u64(5);
    let arch = Architecture::single_mesh(k, k).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let theta = chip.init_params(&mut rng);
    let x = normal_cvector(k, &mut rng);
    (chip, theta, x)
}

fn bench_zo_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("zo_step");
    group.sample_size(20);
    for k in [8usize, 16] {
        let (chip, theta, x) = chip_setup(k);
        let target = {
            let mut rng = StdRng::seed_from_u64(6);
            normal_cvector(k, &mut rng)
        };
        let zo = ZoSettings::for_dimension(theta.len(), k);
        group.bench_with_input(BenchmarkId::new("vanilla_q_eq_k", k), &k, |b, _| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                let mut loss =
                    |t: &photon_linalg::RVector| (&chip.forward(&x, t) - &target).norm_sqr();
                let base = loss(&theta);
                estimate_gradient(
                    &mut loss,
                    &theta,
                    base,
                    &zo,
                    &Perturbation::Gaussian,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn bench_lcng_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("lcng_step");
    group.sample_size(20);
    for k in [8usize, 16] {
        let (chip, theta, x) = chip_setup(k);
        let model = chip.oracle_network();
        let target = {
            let mut rng = StdRng::seed_from_u64(8);
            normal_cvector(k, &mut rng)
        };
        let settings = LcngSettings::for_dimension(theta.len(), k);
        let inputs = vec![x.clone()];
        group.bench_with_input(BenchmarkId::new("model_metric_q_eq_k", k), &k, |b, _| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                let mut loss =
                    |t: &photon_linalg::RVector| (&chip.forward(&x, t) - &target).norm_sqr();
                let base = loss(&theta);
                lcng_direction(
                    &mut loss,
                    &theta,
                    base,
                    &settings,
                    &Perturbation::Gaussian,
                    &MetricSource::Model {
                        model: &model,
                        inputs: &inputs,
                    },
                    &mut rng,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_cma_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cma_generation");
    group.sample_size(10);
    for n in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("ask_tell_sphere", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(10);
            let mut es = CmaEs::new(&photon_linalg::RVector::ones(n), 0.5);
            b.iter(|| {
                let xs = es.ask(&mut rng);
                let losses: Vec<f64> = xs.iter().map(|v| v.norm_sqr()).collect();
                es.tell(&xs, &losses).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_zo_step,
    bench_lcng_step,
    bench_cma_generation
);
criterion_main!(benches);
