//! Criterion kernels: DFT feature-extraction throughput (the data
//! front-end of every training run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_data::{dft, dft_features, dft_naive, Image, SyntheticMnist};
use photon_linalg::random::normal_cvector;

fn bench_dft(c: &mut Criterion) {
    let mut group = c.benchmark_group("dft");
    let mut rng = StdRng::seed_from_u64(13);
    for n in [256usize, 784, 1024] {
        let x = normal_cvector(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("fast", n), &n, |b, _| {
            b.iter(|| dft(std::hint::black_box(&x)))
        });
    }
    // The naive baseline at the image length, for the speedup headline.
    let x = normal_cvector(784, &mut rng);
    group.sample_size(10);
    group.bench_function("naive_784", |b| {
        b.iter(|| dft_naive(std::hint::black_box(&x)))
    });
    group.finish();
}

fn bench_feature_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("features");
    let mut rng = StdRng::seed_from_u64(14);
    let img: Image = SyntheticMnist::new().render(5, &mut rng);
    for k in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("image_to_features", k), &k, |b, _| {
            b.iter(|| dft_features(std::hint::black_box(&img), k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dft, bench_feature_pipeline);
criterion_main!(benches);
