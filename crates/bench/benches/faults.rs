//! Overhead of the fault-injection layer: how much a `FaultyChip` wrapper
//! costs per forward pass relative to the bare chip, with and without the
//! robust measurement ladder on top.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_exec::ExecPool;
use photon_faults::{DriftConfig, FaultPlan, FaultyChip, TransientConfig};
use photon_linalg::random::normal_cvector;
use photon_linalg::RVector;
use photon_opt::{
    estimate_gradient_pooled, estimate_gradient_robust_pooled, Perturbation, RobustEval,
    ZoSettings,
};
use photon_photonics::{Architecture, ErrorModel, FabricatedChip, OnnChip};

const DIM: usize = 8;

fn setup() -> (FabricatedChip, RVector) {
    let mut rng = StdRng::seed_from_u64(21);
    let arch = Architecture::single_mesh(DIM, DIM).unwrap();
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
    let theta = chip.init_params(&mut rng);
    (chip, theta)
}

fn plan() -> FaultPlan {
    FaultPlan::new(42)
        .with_drift(DriftConfig {
            sigma: 0.02,
            tau: 25.0,
        })
        .with_transients(TransientConfig {
            drop_prob: 0.001,
            spike_prob: 0.005,
            spike_scale: 1e3,
            burst_prob: 0.01,
            burst_sigma: 0.05,
        })
}

fn bench_forward_overhead(c: &mut Criterion) {
    let (chip, theta) = setup();
    let mut rng = StdRng::seed_from_u64(22);
    let x = normal_cvector(DIM, &mut rng);

    let mut group = c.benchmark_group("fault_forward");
    group.bench_function("bare_chip", |b| {
        b.iter(|| chip.forward_powers(std::hint::black_box(&x), std::hint::black_box(&theta)))
    });
    let (chip, theta) = setup();
    let faulty = FaultyChip::new(chip, plan());
    faulty.advance_to(1);
    group.bench_function("faulty_chip", |b| {
        b.iter(|| faulty.forward_powers(std::hint::black_box(&x), std::hint::black_box(&theta)))
    });
    group.finish();
}

fn bench_robust_estimate_overhead(c: &mut Criterion) {
    let (chip, theta) = setup();
    let faulty = FaultyChip::new(chip, plan());
    faulty.advance_to(1);
    let mut rng = StdRng::seed_from_u64(23);
    let x = normal_cvector(DIM, &mut rng);
    let loss = |t: &RVector| {
        let p = faulty.forward_powers(&x, t);
        p.iter().sum::<f64>()
    };
    let zo = ZoSettings::for_dimension(theta.len(), 16);
    let pool = ExecPool::serial();

    let mut group = c.benchmark_group("fault_estimate");
    group.sample_size(20);
    group.bench_function("plain_zo", |b| {
        let mut rng = StdRng::seed_from_u64(24);
        let base = loss(&theta);
        b.iter(|| {
            estimate_gradient_pooled(
                &loss,
                &theta,
                base,
                &zo,
                &Perturbation::Gaussian,
                &pool,
                &mut rng,
            )
        })
    });
    group.bench_function("robust_zo", |b| {
        let mut rng = StdRng::seed_from_u64(24);
        let base = loss(&theta);
        let robust = RobustEval::standard();
        b.iter(|| {
            estimate_gradient_robust_pooled(
                &loss,
                &theta,
                base,
                &zo,
                &Perturbation::Gaussian,
                &robust,
                &pool,
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_forward_overhead, bench_robust_estimate_overhead);
criterion_main!(benches);
