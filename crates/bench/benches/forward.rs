//! Criterion kernels: mesh forward-pass throughput scaling in K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_linalg::random::normal_cvector;
use photon_photonics::{Architecture, ErrorModel, FabricatedChip};

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_forward");
    for k in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(1);
        let arch = Architecture::two_mesh_classifier(k, k).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let theta = chip.init_params(&mut rng);
        let x = normal_cvector(k, &mut rng);
        group.bench_with_input(BenchmarkId::new("two_mesh_classifier", k), &k, |b, _| {
            b.iter(|| chip.forward(std::hint::black_box(&x), std::hint::black_box(&theta)))
        });
    }
    group.finish();
}

fn bench_truncated_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("truncation");
    let k = 16;
    for l in [k, k / 2] {
        let mut rng = StdRng::seed_from_u64(2);
        let arch = Architecture::single_mesh(k, l).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let theta = chip.init_params(&mut rng);
        let x = normal_cvector(k, &mut rng);
        group.bench_with_input(BenchmarkId::new("clements_forward", l), &l, |b, _| {
            b.iter(|| chip.forward(std::hint::black_box(&x), std::hint::black_box(&theta)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_truncated_vs_full);
criterion_main!(benches);
