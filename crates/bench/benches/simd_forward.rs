//! Fast-forward-path tiers vs. the plain compiled f64 baseline — the
//! NNUE-style serving stack measured on the workload it exists for: sparse
//! coordinate-probe sweeps.
//!
//! Every arm evaluates the same `Q = 32` coordinate-perturbed parameter
//! settings on the same `B = 16` sample batch of a 16×16 Clements chip,
//! single-threaded:
//!
//! - `f64-full`: the baseline compiled path — one full probed-walk compile
//!   per probe theta, f64 GEMM (what the repo shipped before this tier
//!   stack).
//! - `f32-simd`: full compile per probe, but panels evaluated on the f32
//!   structure-of-arrays SIMD kernels.
//! - `incremental-f64`: a compile base pinned at the center theta; each
//!   one-phase probe is served by an exact `O(N²)` rank-1 update instead of
//!   a full mesh recompile, f64 GEMM.
//! - `incremental-f32`: rank-1 serving plus the f32 SIMD GEMM — the full
//!   fast path.
//!
//! A custom `main` writes the raw numbers plus per-tier speedups and the
//! dispatched kernel tier to `BENCH_simd.json` at the workspace root.

use std::io::Write as _;

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_core::ClassificationHead;
use photon_data::{Dataset, GaussianClusters};
use photon_linalg::{CVector, RVector};
use photon_photonics::{Architecture, BatchScratch, ErrorModel, FabricatedChip};

const DIM: usize = 16;
const Q: usize = 32;
const BATCH: usize = 16;
const ARMS: [&str; 4] = ["f64-full", "f32-simd", "incremental-f64", "incremental-f32"];

fn fabricate() -> FabricatedChip {
    let mut rng = StdRng::seed_from_u64(11);
    let arch = Architecture::single_mesh(DIM, DIM).unwrap();
    FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng)
}

fn setup() -> (Dataset, ClassificationHead, RVector) {
    let mut rng = StdRng::seed_from_u64(11);
    // Burn the fabrication draws so theta matches the chips built by
    // `fabricate()` from the same seed.
    let chip = fabricate();
    let data = GaussianClusters::new(DIM, DIM, 0.1)
        .generate(BATCH, &mut rng)
        .unwrap();
    let head = ClassificationHead::new(DIM, DIM, 10.0).unwrap();
    let theta = chip.init_params(&mut rng);
    (data, head, theta)
}

/// The ZO coordinate sweep's probe settings: `theta` with a single phase
/// nudged by `mu`, cycling through the coordinates — exactly the sparse
/// diffs the pinned compile base serves incrementally.
fn probe_thetas(theta: &RVector) -> Vec<RVector> {
    let mu = 1e-3 / (theta.len() as f64).sqrt();
    (0..Q)
        .map(|k| {
            let mut t = theta.clone();
            let i = k % t.len();
            t[i] += mu;
            t
        })
        .collect()
}

fn bench_simd_forward(c: &mut Criterion) {
    let (data, head, theta) = setup();
    let thetas = probe_thetas(&theta);
    let xs: Vec<&CVector> = (0..BATCH).map(|i| data.sample(i).0).collect();

    let mut group = c.benchmark_group("simd_forward");
    group.sample_size(15);

    for arm in ARMS {
        let chip = if arm.ends_with("f32") || arm == "f32-simd" {
            fabricate().with_f32_fast_path()
        } else {
            fabricate()
        };
        if arm.starts_with("incremental") {
            chip.pin_compile_base(&theta);
        }
        group.bench_function(arm, |b| {
            let mut scratch = BatchScratch::new();
            b.iter(|| {
                let mut acc = 0.0;
                for t in &thetas {
                    let ys = chip.forward_batch_into(&xs, t, &mut scratch);
                    for (i, y) in ys.iter().enumerate() {
                        acc += head.loss(y, data.sample(i).1);
                    }
                }
                acc
            })
        });
    }

    group.finish();
}

fn write_report(c: &Criterion) -> std::io::Result<()> {
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let kernel = photon_linalg::kernel_tier().name();
    let find = |arm: &str| {
        let id = format!("simd_forward/{arm}");
        c.measurements().iter().find(move |m| m.id == id)
    };
    let baseline = find("f64-full");
    let mut entries = String::new();
    for arm in ARMS {
        if let Some(m) = find(arm) {
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            let speedup = match baseline {
                Some(base) if m.mean.as_nanos() > 0 => format!(
                    "{:.3}",
                    base.mean.as_nanos() as f64 / m.mean.as_nanos() as f64
                ),
                _ => "null".to_string(),
            };
            entries.push_str(&format!(
                "    {{\"tier\": \"{arm}\", \"mean_ns\": {}, \"min_ns\": {}, \
                 \"speedup_vs_f64_full\": {speedup}}}",
                m.mean.as_nanos(),
                m.min.as_nanos()
            ));
        }
    }
    // Hand-rolled JSON: the workspace deliberately has no serde dependency.
    let json = format!(
        "{{\n  \"bench\": \"simd_forward\",\n  \"mesh\": \"{DIM}x{DIM} Clements\",\n  \
         \"q\": {Q},\n  \"batch\": {BATCH},\n  \"probe_kind\": \"coordinate\",\n  \
         \"kernel\": \"{kernel}\",\n  \"host_available_parallelism\": {host_threads},\n  \
         \"note\": \"single-thread coordinate-probe sweep; speedups are vs the plain \
         compiled f64 path (one full compile per probe); see DESIGN.md fast-path tiers\",\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    // benches run with CWD = crate root (crates/bench); write to workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simd.json");
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_simd_forward(&mut c);
    if let Err(e) = write_report(&c) {
        eprintln!("simd_forward: failed to write BENCH_simd.json: {e}");
    }
}
