//! # photon-bench
//!
//! The benchmark and reproduction harness: one binary per table/figure of
//! the paper's evaluation (see `src/bin/`), plus Criterion kernels for the
//! computational hot paths (see `benches/`). Shared experiment plumbing
//! lives here.

#![warn(missing_docs)]

pub mod harness;
