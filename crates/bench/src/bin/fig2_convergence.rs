//! **Figure 2** — training-loss convergence versus epoch for every compared
//! method, on the MNIST-like task.
//!
//! Writes `results/fig2_convergence.csv` with one row per (method, epoch)
//! and prints a coarse text rendition of the series.
//!
//! ```text
//! cargo run -p photon-bench --release --bin fig2_convergence -- [--quick] [--seed N]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_bench::harness::{main_method_grid, BenchArgs};
use photon_core::{
    build_task, downsample, sparkline, CsvWriter, Method, TaskKind, TaskSpec, TrainConfig, Trainer,
};

fn main() {
    let args = BenchArgs::parse();
    let k = args.pick(12, 16);
    let spec = TaskSpec {
        train_size: args.pick(200, 600),
        test_size: args.pick(100, 300),
        ..TaskSpec::image(TaskKind::MnistLike, k)
    };
    let mut config = TrainConfig::for_network(0, k);
    config.warm_epochs = args.pick(3, 10);
    config.epochs = args.pick(8, 60);
    config.batch_size = args.pick(25, 100);

    println!(
        "Fig 2: training-loss convergence (K={k}, {} epochs)\n",
        config.epochs
    );
    let mut csv = CsvWriter::new(&["method", "epoch", "train_loss", "elapsed_s"]);
    let mut summaries = Vec::new();

    // Shared chip/data/warm-start across methods: identical starting point.
    let task = build_task(&spec, args.seed).expect("task construction");
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
        .with_calibrated_model(task.chip.oracle_network());
    let mut warm_rng = StdRng::seed_from_u64(args.seed ^ 0x11a);
    let theta0 = trainer.warm_start(&config, &mut warm_rng);

    let mut methods = main_method_grid(args.quick);
    if !args.quick {
        methods.push(Method::Cma { sigma0: 0.1 });
    }
    for method in methods {
        // The "calibrated" grid slot uses the oracle network attached above,
        // which isolates convergence behavior from calibration quality.
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0x22b);
        let mut theta = theta0.clone();
        match trainer.finetune(method, &config, &mut theta, &mut rng) {
            Ok(out) => {
                for rec in &out.history {
                    csv.record(&[
                        &out.method,
                        &rec.epoch.to_string(),
                        &format!("{}", rec.train_loss),
                        &format!("{}", rec.elapsed),
                    ]);
                }
                let first = out
                    .history
                    .first()
                    .map(|h| h.train_loss)
                    .unwrap_or(f64::NAN);
                let last = out.history.last().map(|h| h.train_loss).unwrap_or(f64::NAN);
                let series: Vec<f64> = out.history.iter().map(|h| h.train_loss).collect();
                let spark = sparkline(&downsample(&series, 40));
                summaries.push((out.method.clone(), first, last));
                println!("  {:<16} loss {first:.4} → {last:.4}  {spark}", out.method);
            }
            Err(e) => eprintln!("  {} failed: {e}", method.label()),
        }
    }

    let path = args.out_dir.join("fig2_convergence.csv");
    csv.write_to(&path).expect("write csv");
    println!("\nseries written to {}", path.display());
    println!("Expected shape: ZO-LCNG reaches lower loss per epoch than ZO-I/ZO-co;");
    println!("ZO-LC sits between; CMA trails at these dimensionalities.");
}
