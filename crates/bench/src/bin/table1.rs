//! **Table 1** — test accuracy of every compared method on the synthetic
//! MNIST-like and Fashion-like tasks across ONN widths K.
//!
//! Reproduces the paper's main table: mean ± std over independent runs,
//! best black-box method in context, Mann-Whitney significance of each
//! method against the best, with the backprop bounds `BP-ideal` (no error
//! information) and `BP-oracle` (perfect error information) framing the
//! black-box block.
//!
//! ```text
//! cargo run -p photon-bench --release --bin table1 -- [--quick] [--seed N] [--runs N]
//! ```

use photon_bench::harness::{bound_method_grid, main_method_grid, BenchArgs};
use photon_calib::{CalibrationSettings, LmSettings};
use photon_core::{mann_whitney_u, run_method, TaskKind, TaskSpec, TextTable, TrainConfig};

fn main() {
    let args = BenchArgs::parse();
    let runs = args.runs_or(3, 8);
    // K = 24 stands in for the paper's largest width: the calibration
    // Jacobian is finite-difference (O(error-params) model sweeps per
    // Gauss-Newton iteration), which keeps the full table affordable on a
    // laptop while still showing the with-K trend.
    let ks: &[usize] = if args.quick { &[12] } else { &[16, 24] };
    let tasks = [TaskKind::MnistLike, TaskKind::FashionLike];

    println!("Table 1: test accuracy @ end of stage 2 (mean ± std over {runs} runs)");
    println!(
        "mode: {} | seed {} | K ∈ {:?}\n",
        if args.quick { "quick" } else { "full" },
        args.seed,
        ks
    );

    for kind in tasks {
        let mut table = TextTable::new(&["method", "K", "accuracy", "vs best", "queries"]);
        for &k in ks {
            let spec = TaskSpec {
                train_size: args.pick(200, 600),
                test_size: args.pick(100, 300),
                ..TaskSpec::image(kind, k)
            };
            let mut config = TrainConfig::for_network(0, k);
            config.warm_epochs = args.pick(3, 10);
            config.epochs = args.pick(6, 40);
            config.batch_size = args.pick(25, 100);
            // With --trace, every run of this (task, K) cell appends its
            // span of events to one JSONL artifact next to the CSVs.
            config.trace = args.trace_handle(&format!(
                "table1_{}_k{k}_trace",
                kind.label().to_lowercase().replace('-', "_")
            ));

            // CMA only at the smallest width — it does not scale (the same
            // failure the paper reports).
            let include_cma = k == ks[0];
            let calib_settings = CalibrationSettings {
                lm: LmSettings {
                    max_iters: 10,
                    ..LmSettings::default()
                },
                ..CalibrationSettings::default()
            };

            let mut results = Vec::new();
            for method in main_method_grid(include_cma) {
                let needs_calib = method.label().contains("calib");
                let calib = needs_calib.then_some(&calib_settings);
                match run_method(&spec, method, &config, runs, args.seed, calib) {
                    Ok(res) => {
                        eprintln!(
                            "  [{} K={k}] {}: {}",
                            kind.label(),
                            res.method,
                            res.accuracy.format(4)
                        );
                        results.push(res);
                    }
                    Err(e) => {
                        eprintln!("  [{} K={k}] {method:?} failed: {e}", kind.label())
                    }
                }
            }
            // Best black-box method by mean accuracy.
            let best_idx = results
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.accuracy.mean.total_cmp(&b.1.accuracy.mean))
                .map(|(i, _)| i)
                .unwrap_or(0);
            for (i, res) in results.iter().enumerate() {
                let sig = if i == best_idx {
                    "best".to_string()
                } else {
                    mann_whitney_u(&res.accuracy.values, &results[best_idx].accuracy.values)
                        .annotation()
                        .to_string()
                };
                table.row_owned(vec![
                    res.method.clone(),
                    format!("{k}"),
                    format!(
                        "{:.2}% ±{:.2}",
                        100.0 * res.accuracy.mean,
                        100.0 * res.accuracy.std
                    ),
                    sig,
                    format!("{:.0}", res.mean_queries),
                ]);
            }
            // Gradient bounds for context.
            for method in bound_method_grid() {
                if let Ok(res) = run_method(&spec, method, &config, runs, args.seed, None) {
                    table.row_owned(vec![
                        res.method.clone(),
                        format!("{k}"),
                        format!(
                            "{:.2}% ±{:.2}",
                            100.0 * res.accuracy.mean,
                            100.0 * res.accuracy.std
                        ),
                        "bound".into(),
                        "0".into(),
                    ]);
                }
            }
        }
        println!("== {} ==\n{}", kind.label(), table.render());
    }
}
