//! **Figure 4** — effect of the probe count `Q` on final training loss for
//! vanilla ZO and ZO-LCNG at a fixed query budget per epoch.
//!
//! Writes `results/fig4_q_sweep.csv`.
//!
//! ```text
//! cargo run -p photon-bench --release --bin fig4_q_sweep -- [--quick] [--seed N] [--runs N]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_bench::harness::BenchArgs;
use photon_core::{
    build_task, CsvWriter, Method, ModelChoice, RunSummary, TaskKind, TaskSpec, TextTable,
    TrainConfig, Trainer,
};

fn main() {
    let args = BenchArgs::parse();
    let runs = args.runs_or(2, 5);
    let k = args.pick(12, 16);
    let qs: &[usize] = if args.quick {
        &[2, 8, 16]
    } else {
        &[2, 4, 8, 16, 32, 64]
    };
    let spec = TaskSpec {
        train_size: args.pick(200, 500),
        test_size: args.pick(100, 250),
        ..TaskSpec::image(TaskKind::MnistLike, k)
    };

    println!("Fig 4: final training loss vs probe count Q (K={k}, {runs} runs)\n");
    let mut csv = CsvWriter::new(&["method", "q", "final_loss_mean", "final_loss_std"]);
    let mut table = TextTable::new(&["Q", "ZO-I", "ZO-LCNG"]);
    for &q in qs {
        let mut row = vec![q.to_string()];
        for method in [
            Method::ZoGaussian,
            Method::Lcng {
                model: ModelChoice::OracleTrue,
            },
        ] {
            let mut losses = Vec::new();
            for r in 0..runs {
                let seed = args.seed.wrapping_add(r as u64).wrapping_mul(0x41);
                let task = build_task(&spec, seed).expect("task construction");
                let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
                let mut config = TrainConfig::for_network(0, k);
                config.q = q;
                config.warm_epochs = args.pick(3, 10);
                config.epochs = args.pick(5, 30);
                config.batch_size = args.pick(25, 100);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x44);
                let out = trainer.train(method, &config, &mut rng).expect("training");
                losses.push(out.history.last().unwrap().train_loss);
            }
            let s = RunSummary::from_values(&losses);
            csv.record(&[
                &method.label(),
                &q.to_string(),
                &format!("{}", s.mean),
                &format!("{}", s.std),
            ]);
            row.push(format!("{:.4} ±{:.4}", s.mean, s.std));
            eprintln!("  Q={q} {}: {:.4}", method.label(), s.mean);
        }
        table.row_owned(row);
    }
    println!("{}", table.render());
    let path = args.out_dir.join("fig4_q_sweep.csv");
    csv.write_to(&path).expect("write csv");
    println!("series written to {}", path.display());
    println!("Expected shape: both methods improve with Q; the LCNG gap widens");
    println!("as Q grows (a richer probed subspace to recombine within).");
}
