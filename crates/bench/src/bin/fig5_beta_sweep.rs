//! **Figure 5** — robustness to the fabrication-error magnitude `β`:
//! accuracy of BP-ideal (error-blind), vanilla ZO and ZO-LCNG as the chip
//! gets noisier.
//!
//! Writes `results/fig5_beta_sweep.csv`.
//!
//! ```text
//! cargo run -p photon-bench --release --bin fig5_beta_sweep -- [--quick] [--seed N] [--runs N]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_bench::harness::BenchArgs;
use photon_core::{
    build_task, CsvWriter, Method, ModelChoice, RunSummary, TaskKind, TaskSpec, TextTable,
    TrainConfig, Trainer,
};

fn main() {
    let args = BenchArgs::parse();
    let runs = args.runs_or(2, 5);
    let k = args.pick(12, 16);
    let betas: &[f64] = if args.quick {
        &[0.0, 1.0, 4.0]
    } else {
        &[0.0, 0.5, 1.0, 2.0, 4.0]
    };
    let methods = [
        Method::BpIdeal,
        Method::ZoGaussian,
        Method::Lcng {
            model: ModelChoice::OracleTrue,
        },
    ];

    println!("Fig 5: accuracy vs fabrication-error magnitude β (K={k}, {runs} runs)\n");
    let mut csv = CsvWriter::new(&["method", "beta", "accuracy_mean", "accuracy_std"]);
    let mut table = TextTable::new(&["beta", "BP-ideal", "ZO-I", "ZO-LCNG(oracle)"]);
    for &beta in betas {
        let mut row = vec![format!("{beta}")];
        for method in methods {
            let mut accs = Vec::new();
            for r in 0..runs {
                let seed = args.seed.wrapping_add(r as u64).wrapping_mul(0x51);
                let spec = TaskSpec {
                    beta,
                    train_size: args.pick(200, 500),
                    test_size: args.pick(100, 250),
                    ..TaskSpec::image(TaskKind::MnistLike, k)
                };
                let task = build_task(&spec, seed).expect("task construction");
                let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
                let mut config = TrainConfig::for_network(0, k);
                config.warm_epochs = args.pick(3, 10);
                config.epochs = args.pick(5, 30);
                config.batch_size = args.pick(25, 100);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x55);
                let out = trainer.train(method, &config, &mut rng).expect("training");
                accs.push(out.final_eval.accuracy);
            }
            let s = RunSummary::from_values(&accs);
            csv.record(&[
                &method.label(),
                &format!("{beta}"),
                &format!("{}", s.mean),
                &format!("{}", s.std),
            ]);
            row.push(format!("{:.2}% ±{:.2}", 100.0 * s.mean, 100.0 * s.std));
            eprintln!("  β={beta} {}: {:.3}", method.label(), s.mean);
        }
        table.row_owned(row);
    }
    println!("{}", table.render());
    let path = args.out_dir.join("fig5_beta_sweep.csv");
    csv.write_to(&path).expect("write csv");
    println!("series written to {}", path.display());
    println!("Expected shape: all methods coincide at β=0; BP-ideal degrades");
    println!("fastest with β (its gradients are computed on the wrong device);");
    println!("chip-in-the-loop ZO methods degrade gracefully, LCNG the least.");
}
