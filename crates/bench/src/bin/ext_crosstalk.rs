//! **Extension experiment E2** — robustness to *unmodeled* errors (not in
//! the paper; exercises the thermal-crosstalk extension).
//!
//! The calibration family (γ, ζ) cannot represent nearest-neighbour heater
//! crosstalk, so as the coupling grows, even the oracle-error software
//! model becomes wrong about the chip. Model-based backprop inherits that
//! mismatch in its gradients; chip-in-the-loop ZO methods only use the
//! model for *curvature* (LCNG) or not at all (ZO-I), so they should absorb
//! the mismatch.
//!
//! ```text
//! cargo run -p photon-bench --release --bin ext_crosstalk -- [--quick] [--seed N] [--runs N]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_bench::harness::BenchArgs;
use photon_core::{
    ClassificationHead, CsvWriter, Method, ModelChoice, RunSummary, TaskSpec, TextTable,
    TrainConfig, Trainer,
};
use photon_data::GaussianClusters;
use photon_photonics::{Architecture, ErrorModel, FabricatedChip};

fn main() {
    let args = BenchArgs::parse();
    let runs = args.runs_or(2, 5);
    let k = 8;
    let couplings: &[f64] = if args.quick {
        &[0.0, 0.03]
    } else {
        &[0.0, 0.01, 0.03, 0.08]
    };
    let methods = [
        Method::BpOracle,
        Method::ZoGaussian,
        Method::Lcng {
            model: ModelChoice::OracleTrue,
        },
    ];

    println!("Extension E2: accuracy vs unmodeled thermal crosstalk (K={k}, {runs} runs)\n");
    let mut csv = CsvWriter::new(&["method", "coupling", "accuracy_mean", "accuracy_std"]);
    let mut table = TextTable::new(&["coupling", "BP-oracle", "ZO-I", "ZO-LCNG(oracle)"]);
    for &coupling in couplings {
        let mut row = vec![format!("{coupling}")];
        for method in methods {
            let mut accs = Vec::new();
            for r in 0..runs {
                let seed = args.seed.wrapping_add(r as u64).wrapping_mul(0xe2);
                let mut rng = StdRng::seed_from_u64(seed);
                let arch = Architecture::single_mesh(k, k).expect("valid architecture");
                let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng)
                    .with_thermal_crosstalk(coupling);
                let spec = TaskSpec {
                    train_size: args.pick(120, 240),
                    test_size: args.pick(60, 120),
                    ..TaskSpec::quick(k)
                };
                let data = GaussianClusters::new(k, spec.num_classes(), 0.15)
                    .generate(spec.train_size + spec.test_size, &mut rng)
                    .expect("dataset");
                let (train, test) = data.split(
                    spec.train_size as f64 / (spec.train_size + spec.test_size) as f64,
                    &mut rng,
                );
                let head =
                    ClassificationHead::new(k, spec.num_classes(), spec.gain).expect("valid head");
                let trainer = Trainer::new(&chip, &train, &test, head);
                let mut config = TrainConfig::quick(k);
                config.epochs = args.pick(6, 15);
                let out = trainer.train(method, &config, &mut rng).expect("training");
                accs.push(out.final_eval.accuracy);
            }
            let s = RunSummary::from_values(&accs);
            csv.record(&[
                &method.label(),
                &format!("{coupling}"),
                &format!("{}", s.mean),
                &format!("{}", s.std),
            ]);
            row.push(format!("{:.2}% ±{:.2}", 100.0 * s.mean, 100.0 * s.std));
            eprintln!("  coupling={coupling} {}: {:.3}", method.label(), s.mean);
        }
        table.row_owned(row);
    }
    println!("{}", table.render());
    let path = args.out_dir.join("ext_crosstalk.csv");
    csv.write_to(&path).expect("write csv");
    println!("series written to {}", path.display());
    println!("Expected shape: at zero coupling BP-oracle is the upper bound; as the");
    println!("unmodeled coupling grows its advantage erodes while the chip-in-the-loop");
    println!("methods degrade more slowly — LCNG tolerates a *wrong* metric, since the");
    println!("metric only shapes the search, the chip itself supplies the loss.");
}
