//! **Figure 7** — isotropy diagnostics motivating the natural-gradient
//! metric: eigenvalue spread of the module output covariance under
//! identity-covariance versus Fisher-whitened parameter perturbations, for
//! the full Clements(8,8) and truncated Clements(8,4) meshes.
//!
//! Writes `results/fig7_fisher_spectrum.csv` with the sorted eigenvalue
//! series.
//!
//! ```text
//! cargo run -p photon-bench --release --bin fig7_fisher_spectrum -- [--quick] [--seed N]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use photon_bench::harness::BenchArgs;
use photon_core::{CsvWriter, RunSummary, TextTable};
use photon_linalg::random::{normal_cvector, normal_rvector, sample_gaussian};
use photon_linalg::{RCholesky, RVector};
use photon_opt::sigma_from_fisher;
use photon_photonics::{
    anisotropy_ratio, covariance_eigenvalues, module_fisher_block, output_covariance, MeshModule,
    OnnModule,
};

fn main() {
    let args = BenchArgs::parse();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let r_in = args.pick(20, 100);
    let q = args.pick(60, 200);
    let rho = 0.1;

    println!("Fig 7: output-covariance eigenvalue spread, identity vs Σ-shaped probes\n");
    let mut csv = CsvWriter::new(&["mesh", "perturbation", "eig_index", "eigenvalue_mean"]);
    let mut table = TextTable::new(&[
        "mesh",
        "anisotropy (identity)",
        "anisotropy (sigma)",
        "off-diag Fisher mass",
    ]);

    for (dim, layers) in [(8usize, 8usize), (8, 4)] {
        let mesh = MeshModule::clements(dim, layers);
        let n = mesh.param_count();
        let theta: Vec<f64> = (0..n)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();
        let fisher_inputs: Vec<_> = (0..r_in.min(40))
            .map(|_| normal_cvector(dim, &mut rng))
            .collect();
        let fisher = module_fisher_block(&mesh, &theta, &fisher_inputs);

        // Off-diagonal interrelation mass (relative to the diagonal).
        let mut off = 0.0;
        let mut diag = 0.0;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    diag += fisher[(a, b)].abs();
                } else {
                    off += fisher[(a, b)].abs();
                }
            }
        }
        let off_ratio = off / diag.max(1e-12);

        let sigma = sigma_from_fisher(&fisher, rho).expect("damped inverse exists");
        let chol = RCholesky::new(&sigma).expect("sigma is PD");

        // Eigenvalue spreads averaged over fresh inputs.
        let mut ratios_iso = Vec::new();
        let mut ratios_sig = Vec::new();
        let mut eig_iso_acc: Option<RVector> = None;
        let mut eig_sig_acc: Option<RVector> = None;
        let trials = args.pick(10, 30);
        for _ in 0..trials {
            let x = normal_cvector(dim, &mut rng);
            let iso: Vec<RVector> = (0..q).map(|_| normal_rvector(n, &mut rng)).collect();
            let sig: Vec<RVector> = (0..q)
                .map(|_| sample_gaussian(&chol, &mut rng).expect("dim matches"))
                .collect();
            let e_iso = covariance_eigenvalues(&output_covariance(&mesh, &x, &theta, &iso));
            let e_sig = covariance_eigenvalues(&output_covariance(&mesh, &x, &theta, &sig));
            ratios_iso.push(anisotropy_ratio(&e_iso, 1e-9));
            ratios_sig.push(anisotropy_ratio(&e_sig, 1e-9));
            let acc = eig_iso_acc.get_or_insert_with(|| RVector::zeros(dim));
            acc.axpy(1.0 / trials as f64, &e_iso);
            let acc = eig_sig_acc.get_or_insert_with(|| RVector::zeros(dim));
            acc.axpy(1.0 / trials as f64, &e_sig);
        }
        let mesh_name = mesh.name();
        for (label, eigs) in [
            ("identity", eig_iso_acc.unwrap()),
            ("sigma", eig_sig_acc.unwrap()),
        ] {
            for i in 0..dim {
                csv.record(&[&mesh_name, label, &i.to_string(), &format!("{}", eigs[i])]);
            }
        }
        let s_iso = RunSummary::from_values(&ratios_iso);
        let s_sig = RunSummary::from_values(&ratios_sig);
        table.row_owned(vec![
            mesh_name.clone(),
            s_iso.format(1),
            s_sig.format(1),
            format!("{off_ratio:.2}"),
        ]);
        println!(
            "  {mesh_name}: anisotropy {:.1} → {:.1} (lower = more isotropic)",
            s_iso.mean, s_sig.mean
        );
    }
    println!("\n{}", table.render());
    let path = args.out_dir.join("fig7_fisher_spectrum.csv");
    csv.write_to(&path).expect("write csv");
    println!("series written to {}", path.display());
    println!("Expected shape: layered meshes have substantial off-diagonal Fisher");
    println!("mass; Σ-shaped perturbations collapse the eigenvalue spread toward 1.");
}
