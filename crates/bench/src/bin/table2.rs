//! **Table 2** — calibration quality versus probe budget, and its
//! downstream effect on ZO-LCNG accuracy.
//!
//! For each probe budget: chip queries spent, per-family parameter RMSE
//! against the oracle errors, held-out power/field fidelity of the
//! calibrated model, and the final accuracy of ZO-LCNG using that model as
//! its Fisher-metric source.
//!
//! ```text
//! cargo run -p photon-bench --release --bin table2 -- [--quick] [--seed N]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_bench::harness::BenchArgs;
use photon_calib::{calibrate, evaluate_model, CalibrationSettings, LmSettings};
use photon_core::{
    build_task, Method, ModelChoice, RunSummary, TaskKind, TaskSpec, TextTable, TrainConfig,
    Trainer,
};
use photon_photonics::ideal_model;

fn main() {
    let args = BenchArgs::parse();
    let runs = args.runs_or(2, 5);
    let k = args.pick(12, 16);
    let spec = TaskSpec {
        train_size: args.pick(200, 500),
        test_size: args.pick(100, 250),
        ..TaskSpec::image(TaskKind::MnistLike, k)
    };
    let mut config = TrainConfig::for_network(0, k);
    config.warm_epochs = args.pick(3, 10);
    config.epochs = args.pick(5, 30);
    config.batch_size = args.pick(25, 100);

    println!("Table 2: calibration quality vs probe budget (K={k}, {runs} runs)\n");
    let mut table = TextTable::new(&[
        "budget",
        "chip queries",
        "gamma RMSE",
        "phase RMSE",
        "power fid",
        "field fid",
        "LCNG accuracy",
    ]);

    // Budgets: none (ideal model), then growing probe plans.
    let budgets: &[(usize, usize)] = &[(0, 0), (2, 2), (8, 3), (24, 5)];
    for &(random_inputs, num_settings) in budgets {
        let mut g_rmse = Vec::new();
        let mut p_rmse = Vec::new();
        let mut pf = Vec::new();
        let mut ff = Vec::new();
        let mut acc = Vec::new();
        let mut queries = 0usize;
        for r in 0..runs {
            let seed = args.seed.wrapping_add(r as u64).wrapping_mul(0x1001);
            let task = build_task(&spec, seed).expect("task construction");
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7a51e);

            let (model, q) = if num_settings == 0 {
                (ideal_model(task.chip.architecture()), 0)
            } else {
                let settings = CalibrationSettings {
                    include_basis: true,
                    random_inputs,
                    num_settings,
                    lm: LmSettings {
                        max_iters: args.pick(6, 20),
                        ..LmSettings::default()
                    },
                };
                let out = calibrate(&task.chip, &settings, &mut rng).expect("calibration");
                let rmse = task.chip.oracle_errors().rmse(&out.errors);
                g_rmse.push(rmse.gamma);
                p_rmse.push(rmse.phase);
                (out.model, out.chip_queries)
            };
            queries = q;
            let fid = evaluate_model(&task.chip, &model, 12, 3, &mut rng);
            pf.push(fid.power);
            ff.push(fid.field);

            let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
                .with_calibrated_model(model);
            let out = trainer
                .train(
                    Method::Lcng {
                        model: ModelChoice::Calibrated,
                    },
                    &config,
                    &mut rng,
                )
                .expect("training");
            acc.push(out.final_eval.accuracy);
            eprintln!(
                "  budget ({random_inputs},{num_settings}) run {r}: acc {:.3}",
                out.final_eval.accuracy
            );
        }
        let fmt = |v: &[f64], d: usize| {
            if v.is_empty() {
                "-".to_string()
            } else {
                RunSummary::from_values(v).format(d)
            }
        };
        table.row_owned(vec![
            if num_settings == 0 {
                "none (ideal)".into()
            } else {
                format!("{}x{}", k + random_inputs, num_settings)
            },
            format!("{queries}"),
            fmt(&g_rmse, 4),
            fmt(&p_rmse, 4),
            fmt(&pf, 4),
            fmt(&ff, 4),
            format!(
                "{:.2}% ±{:.2}",
                100.0 * RunSummary::from_values(&acc).mean,
                100.0 * RunSummary::from_values(&acc).std
            ),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: more probes → lower RMSE, higher fidelity, higher accuracy.");
}
