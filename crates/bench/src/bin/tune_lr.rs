//! **Tuning protocol** — the Optuna-substitute pass: per-method random
//! search over the Adam learning rate (and CMA-ES σ₀) on a small task,
//! mirroring the paper's per-(task, K, method) step-size tuning before the
//! comparison runs.
//!
//! ```text
//! cargo run -p photon-bench --release --bin tune_lr -- [--quick] [--seed N] [--runs N]
//! ```
//!
//! `--runs` sets the number of search trials per method (default 8/16).

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_bench::harness::BenchArgs;
use photon_core::{build_task, Method, ModelChoice, TaskSpec, TextTable, TrainConfig, Trainer};
use photon_opt::{random_search, LogUniform};

fn main() {
    let args = BenchArgs::parse();
    let trials = args.runs_or(8, 16);
    let k = args.pick(8, 12);
    let spec = TaskSpec {
        train_size: args.pick(120, 240),
        test_size: args.pick(60, 120),
        ..TaskSpec::quick(k)
    };

    println!("Learning-rate tuning, {trials} random-search trials per method (K={k})\n");
    let mut table = TextTable::new(&["method", "best lr", "best final loss", "worst final loss"]);

    let methods = [
        Method::ZoGaussian,
        Method::ZoCoordinate,
        Method::ZoLc,
        Method::Lcng {
            model: ModelChoice::OracleTrue,
        },
    ];
    for method in methods {
        let mut eval = |lr: f64| -> f64 {
            let task = build_task(&spec, args.seed).expect("task construction");
            let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
                .with_calibrated_model(task.chip.oracle_network());
            let mut config = TrainConfig::quick(k);
            config.epochs = args.pick(4, 10);
            config.lr = lr;
            let mut rng = StdRng::seed_from_u64(args.seed ^ 0x7e57);
            match trainer.train(method, &config, &mut rng) {
                Ok(out) => out.history.last().map(|h| h.train_loss).unwrap_or(f64::MAX),
                Err(_) => f64::MAX,
            }
        };
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0x701e);
        let results = random_search(LogUniform::new(1e-4, 0.5), trials, &mut eval, &mut rng);
        table.row_owned(vec![
            method.label(),
            format!("{:.4}", results[0].value),
            format!("{:.4}", results[0].score),
            format!("{:.4}", results.last().unwrap().score),
        ]);
        println!("  {}: lr* = {:.4}", method.label(), results[0].value);
    }

    // CMA tunes σ₀ instead.
    let mut eval_sigma = |sigma0: f64| -> f64 {
        let task = build_task(&spec, args.seed).expect("task construction");
        let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
        let mut config = TrainConfig::quick(k);
        config.epochs = args.pick(3, 6);
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0x7e57);
        match trainer.train(Method::Cma { sigma0 }, &config, &mut rng) {
            Ok(out) => out.history.last().map(|h| h.train_loss).unwrap_or(f64::MAX),
            Err(_) => f64::MAX,
        }
    };
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xc3a);
    let results = random_search(
        LogUniform::new(1e-3, 1.0),
        trials.min(8),
        &mut eval_sigma,
        &mut rng,
    );
    table.row_owned(vec![
        "CMA (σ₀)".into(),
        format!("{:.4}", results[0].value),
        format!("{:.4}", results[0].score),
        format!("{:.4}", results.last().unwrap().score),
    ]);

    println!("\n{}", table.render());
    println!("Use the tuned values via TrainConfig.lr / Method::Cma {{ sigma0 }} in the");
    println!("table/figure binaries for a fully tuned comparison.");
}
