//! **Figure 3** — training loss versus cumulative *chip queries*: the
//! currency black-box ONN training actually pays in.
//!
//! LCNG spends the same `Q+1` loss queries per iteration as vanilla ZO plus
//! free model-side work, so any gap in this figure is pure direction
//! quality. Writes `results/fig3_query_efficiency.csv`.
//!
//! ```text
//! cargo run -p photon-bench --release --bin fig3_query_efficiency -- [--quick] [--seed N]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_bench::harness::BenchArgs;
use photon_core::{
    build_task, CsvWriter, Method, ModelChoice, TaskKind, TaskSpec, TrainConfig, Trainer,
};

fn main() {
    let args = BenchArgs::parse();
    let k = args.pick(12, 16);
    let spec = TaskSpec {
        train_size: args.pick(200, 600),
        test_size: args.pick(100, 300),
        ..TaskSpec::image(TaskKind::MnistLike, k)
    };
    let mut config = TrainConfig::for_network(0, k);
    config.warm_epochs = args.pick(3, 10);
    config.epochs = args.pick(8, 60);
    config.batch_size = args.pick(25, 100);

    println!("Fig 3: loss vs cumulative training queries (K={k})\n");
    let task = build_task(&spec, args.seed).expect("task construction");
    let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head)
        .with_calibrated_model(task.chip.oracle_network());
    let mut warm_rng = StdRng::seed_from_u64(args.seed ^ 0x31a);
    let theta0 = trainer.warm_start(&config, &mut warm_rng);

    let methods = [
        Method::ZoGaussian,
        Method::ZoCoordinate,
        Method::ZoLc,
        Method::Lcng {
            model: ModelChoice::Calibrated,
        },
    ];
    let mut csv = CsvWriter::new(&["method", "queries", "train_loss"]);
    for method in methods {
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0x32b);
        let mut theta = theta0.clone();
        // With --trace, each method writes its own JSONL artifact whose
        // query_ledger events break the cumulative counts down by category.
        let mut config = config.clone();
        config.trace = args.trace_handle(&format!(
            "fig3_{}_trace",
            method
                .label()
                .to_lowercase()
                .replace(|c: char| !c.is_ascii_alphanumeric(), "_")
        ));
        match trainer.finetune(method, &config, &mut theta, &mut rng) {
            Ok(out) => {
                for rec in &out.history {
                    csv.record(&[
                        &out.method,
                        &rec.training_queries.to_string(),
                        &format!("{}", rec.train_loss),
                    ]);
                }
                let last = out.history.last().unwrap();
                println!(
                    "  {:<16} {:>9} queries → loss {:.4}",
                    out.method, last.training_queries, last.train_loss
                );
            }
            Err(e) => eprintln!("  {} failed: {e}", method.label()),
        }
    }
    let path = args.out_dir.join("fig3_query_efficiency.csv");
    csv.write_to(&path).expect("write csv");
    println!("\nseries written to {}", path.display());
    println!("Expected shape: at equal query budgets LCNG sits below vanilla ZO;");
    println!("at very small budgets the methods overlap (the Gram needs a few");
    println!("iterations of Adam state before the advantage shows).");
}
