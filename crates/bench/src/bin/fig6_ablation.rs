//! **Figure 6** — decomposition ablation: which part of LCNG earns its
//! keep?
//!
//! Grid: {linear combination only (`ZO-LC`), natural gradient only
//! (`ZO-NG`), full `ZO-LCNG`} × Fisher-metric source {ideal model,
//! calibrated model, oracle-true model}, against the `ZO-I` reference.
//! Writes `results/fig6_ablation.csv`.
//!
//! ```text
//! cargo run -p photon-bench --release --bin fig6_ablation -- [--quick] [--seed N] [--runs N]
//! ```

use photon_bench::harness::BenchArgs;
use photon_calib::CalibrationSettings;
use photon_core::{
    run_method, CsvWriter, Method, ModelChoice, TaskKind, TaskSpec, TextTable, TrainConfig,
};

fn main() {
    let args = BenchArgs::parse();
    let runs = args.runs_or(2, 6);
    let k = args.pick(12, 16);
    let spec = TaskSpec {
        train_size: args.pick(200, 500),
        test_size: args.pick(100, 250),
        ..TaskSpec::image(TaskKind::MnistLike, k)
    };
    let mut config = TrainConfig::for_network(0, k);
    config.warm_epochs = args.pick(3, 10);
    config.epochs = args.pick(5, 30);
    config.batch_size = args.pick(25, 100);

    println!("Fig 6: LC/NG/LCNG × metric-source ablation (K={k}, {runs} runs)\n");
    let grid: Vec<Method> = vec![
        Method::ZoGaussian,
        Method::ZoLc,
        Method::ZoNg {
            model: ModelChoice::Ideal,
        },
        Method::ZoNg {
            model: ModelChoice::OracleTrue,
        },
        Method::Lcng {
            model: ModelChoice::Ideal,
        },
        Method::Lcng {
            model: ModelChoice::Calibrated,
        },
        Method::Lcng {
            model: ModelChoice::OracleTrue,
        },
        Method::ZoShaped {
            model: ModelChoice::Ideal,
        },
    ];

    let calib_settings = CalibrationSettings::default();
    let mut csv = CsvWriter::new(&["method", "accuracy_mean", "accuracy_std", "loss_mean"]);
    let mut table = TextTable::new(&["method", "accuracy", "final train loss"]);
    for method in grid {
        let needs_calib = method.label().contains("calib");
        let calib = needs_calib.then_some(&calib_settings);
        match run_method(&spec, method, &config, runs, args.seed, calib) {
            Ok(res) => {
                csv.record(&[
                    &res.method,
                    &format!("{}", res.accuracy.mean),
                    &format!("{}", res.accuracy.std),
                    &format!("{}", res.train_loss.mean),
                ]);
                table.row_owned(vec![
                    res.method.clone(),
                    format!(
                        "{:.2}% ±{:.2}",
                        100.0 * res.accuracy.mean,
                        100.0 * res.accuracy.std
                    ),
                    format!("{:.4}", res.train_loss.mean),
                ]);
                eprintln!("  {}: {:.3}", res.method, res.accuracy.mean);
            }
            Err(e) => eprintln!("  {method:?} failed: {e}"),
        }
    }
    println!("{}", table.render());
    let path = args.out_dir.join("fig6_ablation.csv");
    csv.write_to(&path).expect("write csv");
    println!("series written to {}", path.display());
    println!("Expected shape: LCNG(oracle) ≥ LCNG(calib) ≥ LCNG(ideal) ≥ LC ≥ ZO-I,");
    println!("with NG between LC and LCNG — both halves contribute, and better");
    println!("error information in the metric model monotonically helps.");
}
