//! **Extension experiment E1** — readout-noise robustness (not in the
//! paper; exercises the `MeasurementNoise` extension).
//!
//! Real detectors add shot noise and a noise floor to every power readout,
//! which turns the ZO difference quotients into noisy estimates. This
//! binary sweeps the shot-noise coefficient and compares vanilla ZO against
//! ZO-LCNG: the Gram solve averages over Q probes, so LCNG should degrade
//! more gracefully.
//!
//! ```text
//! cargo run -p photon-bench --release --bin ext_noise_robustness -- [--quick] [--seed N] [--runs N]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_bench::harness::BenchArgs;
use photon_core::ClassificationHead;
use photon_core::{
    CsvWriter, Method, ModelChoice, RunSummary, TaskSpec, TextTable, TrainConfig, Trainer,
};
use photon_data::GaussianClusters;
use photon_photonics::{Architecture, ErrorModel, FabricatedChip, MeasurementNoise};

fn main() {
    let args = BenchArgs::parse();
    let runs = args.runs_or(2, 5);
    let k = 8;
    let shot_levels: &[f64] = if args.quick {
        &[0.0, 0.02]
    } else {
        &[0.0, 0.005, 0.02, 0.08]
    };

    println!("Extension E1: accuracy vs readout shot noise (K={k}, {runs} runs)\n");
    let mut csv = CsvWriter::new(&["method", "shot", "accuracy_mean", "accuracy_std"]);
    let mut table = TextTable::new(&["shot noise", "ZO-I", "ZO-LCNG(oracle)"]);

    for &shot in shot_levels {
        let mut row = vec![format!("{shot}")];
        for method in [
            Method::ZoGaussian,
            Method::Lcng {
                model: ModelChoice::OracleTrue,
            },
        ] {
            let mut accs = Vec::new();
            for r in 0..runs {
                let seed = args.seed.wrapping_add(r as u64).wrapping_mul(0xe1);
                let mut rng = StdRng::seed_from_u64(seed);
                let arch = Architecture::single_mesh(k, k).expect("valid architecture");
                let mut chip =
                    FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
                if shot > 0.0 {
                    chip = chip.with_measurement_noise(
                        MeasurementNoise {
                            shot,
                            floor: shot * 0.02,
                            field: shot * 0.4,
                        },
                        seed ^ 0xd0,
                    );
                }
                let spec = TaskSpec {
                    train_size: args.pick(120, 240),
                    test_size: args.pick(60, 120),
                    ..TaskSpec::quick(k)
                };
                let data = GaussianClusters::new(k, spec.num_classes(), 0.15)
                    .generate(spec.train_size + spec.test_size, &mut rng)
                    .expect("dataset");
                let (train, test) = data.split(
                    spec.train_size as f64 / (spec.train_size + spec.test_size) as f64,
                    &mut rng,
                );
                let head =
                    ClassificationHead::new(k, spec.num_classes(), spec.gain).expect("valid head");
                let trainer = Trainer::new(&chip, &train, &test, head);
                let mut config = TrainConfig::quick(k);
                config.epochs = args.pick(6, 15);
                // Measurement noise demands a larger smoothing step so the
                // finite differences are signal- rather than noise-dominated.
                if shot > 0.0 {
                    config.mu_override = Some(0.05);
                }
                let out = trainer.train(method, &config, &mut rng).expect("training");
                accs.push(out.final_eval.accuracy);
            }
            let s = RunSummary::from_values(&accs);
            csv.record(&[
                &method.label(),
                &format!("{shot}"),
                &format!("{}", s.mean),
                &format!("{}", s.std),
            ]);
            row.push(format!("{:.2}% ±{:.2}", 100.0 * s.mean, 100.0 * s.std));
            eprintln!("  shot={shot} {}: {:.3}", method.label(), s.mean);
        }
        table.row_owned(row);
    }
    println!("{}", table.render());
    let path = args.out_dir.join("ext_noise_robustness.csv");
    csv.write_to(&path).expect("write csv");
    println!("series written to {}", path.display());
    println!("Expected shape: both methods degrade with shot noise; LCNG keeps an");
    println!("edge until the quotients are noise-dominated, then they converge.");
}
