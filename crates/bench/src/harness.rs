//! Shared plumbing for the table/figure reproduction binaries: CLI flags,
//! result-directory layout and method grids.

use std::path::PathBuf;

use photon_core::{Method, ModelChoice};
use photon_trace::TraceHandle;

/// Command-line arguments shared by every experiment binary.
///
/// Flags: `--quick` (small sizes for smoke runs), `--seed N`, `--runs N`,
/// `--out DIR` (default `results/`), `--trace` (write per-run JSONL trace
/// artifacts next to the CSVs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Use reduced sizes/epochs so the binary finishes in seconds.
    pub quick: bool,
    /// Base seed for all runs.
    pub seed: u64,
    /// Independent runs per configuration (0 = use the binary's default).
    pub runs: usize,
    /// Output directory for CSV series.
    pub out_dir: PathBuf,
    /// Write structured-telemetry JSONL artifacts into `out_dir`.
    pub trace: bool,
}

impl BenchArgs {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics on a malformed flag value (these are developer tools; loud
    /// failure is the right behavior).
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable form of [`Self::parse`]).
    ///
    /// # Panics
    ///
    /// Panics on malformed values or unknown flags.
    #[allow(clippy::should_implement_trait)] // fallible parser, not a FromIterator impl
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = BenchArgs {
            quick: false,
            seed: 42,
            runs: 0,
            out_dir: PathBuf::from("results"),
            trace: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => out.quick = true,
                "--trace" => out.trace = true,
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    out.seed = v.parse().expect("--seed must be an integer");
                }
                "--runs" => {
                    let v = it.next().expect("--runs needs a value");
                    out.runs = v.parse().expect("--runs must be an integer");
                }
                "--out" => {
                    let v = it.next().expect("--out needs a value");
                    out.out_dir = PathBuf::from(v);
                }
                other => {
                    panic!("unknown flag {other}; known: --quick --seed --runs --out --trace")
                }
            }
        }
        out
    }

    /// Runs per configuration: the explicit `--runs`, else `quick_default`
    /// in quick mode, else `full_default`.
    pub fn runs_or(&self, quick_default: usize, full_default: usize) -> usize {
        if self.runs > 0 {
            self.runs
        } else if self.quick {
            quick_default
        } else {
            full_default
        }
    }

    /// Picks between a quick and a full value.
    pub fn pick<T: Copy>(&self, quick: T, full: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// A trace handle for the artifact `<out_dir>/<name>.jsonl` when
    /// `--trace` was given, else the null handle (zero overhead).
    ///
    /// # Panics
    ///
    /// Panics when the artifact file cannot be created (developer tool;
    /// loud failure is the right behavior).
    pub fn trace_handle(&self, name: &str) -> TraceHandle {
        if self.trace {
            let path = self.out_dir.join(format!("{name}.jsonl"));
            TraceHandle::jsonl(&path)
                .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()))
        } else {
            TraceHandle::null()
        }
    }
}

/// The black-box method grid of the main comparison (Table 1 order).
pub fn main_method_grid(include_cma: bool) -> Vec<Method> {
    let mut methods = vec![
        Method::ZoGaussian,
        Method::ZoCoordinate,
        Method::ZoLc,
        Method::ZoNg {
            model: ModelChoice::Ideal,
        },
        Method::Lcng {
            model: ModelChoice::Ideal,
        },
        Method::Lcng {
            model: ModelChoice::Calibrated,
        },
    ];
    if include_cma {
        methods.push(Method::Cma { sigma0: 0.1 });
    }
    methods
}

/// The reference (gradient) bounds reported below the black-box block.
pub fn bound_method_grid() -> Vec<Method> {
    vec![Method::BpIdeal, Method::BpOracle]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let a = BenchArgs::from_iter(Vec::<String>::new());
        assert!(!a.quick);
        assert_eq!(a.seed, 42);
        assert_eq!(a.runs_or(2, 8), 8);
        assert_eq!(a.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn trace_flag_and_handle() {
        let a = BenchArgs::from_iter(Vec::<String>::new());
        assert!(!a.trace);
        assert!(!a.trace_handle("x").is_enabled());
        let b = BenchArgs::from_iter(["--trace".to_string()]);
        assert!(b.trace);
    }

    #[test]
    fn parse_flags() {
        let a = BenchArgs::from_iter(
            ["--quick", "--seed", "7", "--runs", "3", "--out", "/tmp/x"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(a.quick);
        assert_eq!(a.seed, 7);
        assert_eq!(a.runs_or(2, 8), 3);
        assert_eq!(a.pick(1, 2), 1);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = BenchArgs::from_iter(["--bogus".to_string()]);
    }

    #[test]
    fn grids() {
        assert_eq!(main_method_grid(true).len(), 7);
        assert_eq!(main_method_grid(false).len(), 6);
        assert_eq!(bound_method_grid().len(), 2);
    }
}
