//! Property-based tests of the training core.

use proptest::prelude::*;

use photon_core::{
    build_task, mann_whitney_u, normal_sf, softmax, ClassificationHead, RunSummary, TaskSpec,
};
use photon_linalg::{CVector, RVector, C64};

fn arb_output(n: usize) -> impl Strategy<Value = CVector> {
    proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n)
        .prop_map(|v| CVector::from_vec(v.into_iter().map(|(re, im)| C64::new(re, im)).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Softmax is a probability distribution, shift-invariant in the
    /// logits, and order-preserving.
    #[test]
    fn softmax_axioms(
        logits in proptest::collection::vec(-20.0..20.0f64, 2..8),
        shift in -50.0..50.0f64,
    ) {
        let l = RVector::from_slice(&logits);
        let p = softmax(&l);
        prop_assert!((p.sum() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
        let shifted = softmax(&RVector::from_fn(l.len(), |i| l[i] + shift));
        prop_assert!((&p - &shifted).max_abs() < 1e-9);
        prop_assert_eq!(p.argmax(), l.argmax());
    }

    /// Cross-entropy is minimized at the true label: concentrating more
    /// power on the labelled port never increases the loss.
    #[test]
    fn head_loss_decreases_with_signal(
        y in arb_output(8),
        label in 0usize..4,
        boost in 0.1..3.0f64,
    ) {
        let head = ClassificationHead::new(8, 4, 10.0).unwrap();
        let base = head.loss(&y, label);
        let mut boosted = y.clone();
        let port = head.port_of_class(label);
        boosted[port] += C64::from_real(boost);
        // Adding in-phase amplitude to the correct port adds power there.
        prop_assume!(boosted[port].norm_sqr() > y[port].norm_sqr());
        prop_assert!(head.loss(&boosted, label) <= base + 1e-9);
    }

    /// The analytic head gradient matches finite differences for arbitrary
    /// outputs and labels.
    #[test]
    fn head_gradient_fd(y in arb_output(6), label in 0usize..3) {
        let head = ClassificationHead::new(6, 3, 5.0).unwrap();
        let (_, g) = head.loss_and_grad(&y, label);
        let eps = 1e-6;
        for m in 0..6 {
            let mut yp = y.clone();
            yp[m] = yp[m] + eps;
            let mut ym = y.clone();
            ym[m] = ym[m] - eps;
            let fd = (head.loss(&yp, label) - head.loss(&ym, label)) / (2.0 * eps);
            prop_assert!((fd - g[m].re).abs() < 1e-5, "port {m}: {fd} vs {}", g[m].re);
        }
    }

    /// RunSummary mean is within [min, max] and std is scale-consistent.
    #[test]
    fn run_summary_invariants(
        values in proptest::collection::vec(-10.0..10.0f64, 1..12),
        scale in 0.1..5.0f64,
    ) {
        let s = RunSummary::from_values(&values);
        prop_assert!(s.min <= s.mean + 1e-12 && s.mean <= s.max + 1e-12);
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        let s2 = RunSummary::from_values(&scaled);
        prop_assert!((s2.std - s.std * scale).abs() < 1e-9 * (1.0 + s.std));
        prop_assert!((s2.mean - s.mean * scale).abs() < 1e-9 * (1.0 + s.mean.abs()));
    }

    /// The U test is invariant under monotone transformations of the data
    /// (rank-based statistic).
    #[test]
    fn u_test_rank_invariance(
        a in proptest::collection::vec(0.01..10.0f64, 4..10),
        b in proptest::collection::vec(0.01..10.0f64, 4..10),
    ) {
        let t1 = mann_whitney_u(&a, &b);
        let la: Vec<f64> = a.iter().map(|x| x.ln()).collect();
        let lb: Vec<f64> = b.iter().map(|x| x.ln()).collect();
        let t2 = mann_whitney_u(&la, &lb);
        prop_assert!((t1.p_value - t2.p_value).abs() < 1e-9);
        prop_assert!((t1.u - t2.u).abs() < 1e-9);
    }

    /// normal_sf is a decreasing function onto (0, 1) with sf(z)+sf(−z)=1.
    #[test]
    fn normal_sf_properties(z in -4.0..4.0f64, dz in 0.01..1.0f64) {
        let s = normal_sf(z);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!(normal_sf(z + dz) <= s + 1e-9);
        prop_assert!((normal_sf(z) + normal_sf(-z) - 1.0).abs() < 1e-6);
    }

    /// Task construction is a pure function of (spec, seed).
    #[test]
    fn task_reproducibility(seed in 0u64..200) {
        let spec = TaskSpec::quick(4);
        let a = build_task(&spec, seed).unwrap();
        let b = build_task(&spec, seed).unwrap();
        prop_assert_eq!(a.chip.oracle_errors(), b.chip.oracle_errors());
        prop_assert_eq!(a.train.labels(), b.train.labels());
        for i in 0..a.train.len().min(5) {
            prop_assert!((a.train.inputs()[i].clone() - b.train.inputs()[i].clone()).max_abs() < 1e-15);
        }
    }
}
