//! Run statistics: summaries over repeated seeds and the Mann-Whitney U
//! test used for the significance annotations in the paper's tables and
//! box plots.


/// Mean / standard deviation / extrema of a set of run results.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// The raw values, in run order.
    pub values: Vec<f64>,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single run).
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl RunSummary {
    /// Summarizes a non-empty set of values.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize zero runs");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let std = if values.len() > 1 {
            (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        RunSummary {
            values: values.to_vec(),
            mean,
            std,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Formats as `mean ± std` with the given precision.
    pub fn format(&self, decimals: usize) -> String {
        format!("{:.*} ±{:.*}", decimals, self.mean, decimals, self.std)
    }
}

/// Result of a two-sided Mann-Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Standard-normal z-score (tie-corrected, continuity-corrected).
    /// Reported for reference even when the p-value comes from the exact
    /// small-sample distribution.
    pub z: f64,
    /// Two-sided p-value: exact permutation distribution when the pooled
    /// sample has at most [`MANN_WHITNEY_EXACT_MAX_POOLED_N`] values, the
    /// normal approximation above that.
    pub p_value: f64,
}

impl MannWhitney {
    /// The paper's significance legend: `***` for `p ≤ 10⁻³`, `**` for
    /// `p ≤ 10⁻²`, `*` for `p ≤ 0.05`, `ns` otherwise.
    pub fn annotation(&self) -> &'static str {
        if self.p_value <= 1e-3 {
            "***"
        } else if self.p_value <= 1e-2 {
            "**"
        } else if self.p_value <= 0.05 {
            "*"
        } else {
            "ns"
        }
    }
}

/// Pooled-sample ceiling below which [`mann_whitney_u`] computes the
/// two-sided p-value from the **exact** permutation distribution of U
/// (enumerating every assignment of pooled midranks to the first sample)
/// instead of the normal approximation. At canary-slice sizes (n ≤ ~8 per
/// arm) the normal approximation mis-sizes the gate — the exact tail is
/// discrete and the smallest attainable p is `2 / C(n, n1)` — so a gate
/// sized from the approximation can promote a worse shadow theta.
/// `C(20, 10) = 184 756` arrangements keep the exact path microseconds
/// cheap.
pub const MANN_WHITNEY_EXACT_MAX_POOLED_N: usize = 20;

/// Exact two-sided permutation p-value over pooled midranks: the fraction
/// of the `C(n, n1)` equally likely rank assignments whose U deviates from
/// the null mean `n1·n2/2` by at least the observed deviation. Midranks
/// make tie handling exact (tied arrangements share a U value).
fn mann_whitney_exact_p(ranks: &[f64], n1: usize, u_obs: f64, mean_u: f64) -> f64 {
    let total = ranks.len();
    debug_assert!((1..total).contains(&n1) && total <= MANN_WHITNEY_EXACT_MAX_POOLED_N);
    let threshold = (u_obs - mean_u).abs() - 1e-9;
    let base = n1 as f64 * (n1 as f64 + 1.0) / 2.0;
    let mut extreme: u64 = 0;
    let mut arrangements: u64 = 0;
    let mut mask: u64 = (1u64 << n1) - 1;
    let last: u64 = mask << (total - n1);
    loop {
        let mut r1 = 0.0;
        let mut m = mask;
        while m != 0 {
            r1 += ranks[m.trailing_zeros() as usize];
            m &= m - 1;
        }
        if (r1 - base - mean_u).abs() >= threshold {
            extreme += 1;
        }
        arrangements += 1;
        if mask == last {
            break;
        }
        // Gosper's hack: next larger integer with the same popcount.
        let c = mask & mask.wrapping_neg();
        let r = mask + c;
        mask = (((r ^ mask) >> 2) / c) | r;
    }
    extreme as f64 / arrangements as f64
}

/// Two-sided Mann-Whitney U test. For pooled samples of at most
/// [`MANN_WHITNEY_EXACT_MAX_POOLED_N`] values the p-value comes from the
/// exact permutation distribution (ties handled via midranks); larger
/// pools use the tie-corrected, continuity-corrected normal approximation
/// — adequate for the ≥8-run samples used in the experiments.
///
/// # Panics
///
/// Panics when either sample is empty.
///
/// # Examples
///
/// ```
/// use photon_core::mann_whitney_u;
///
/// let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// let b = [11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0];
/// let test = mann_whitney_u(&a, &b);
/// assert!(test.p_value < 0.01); // clearly different samples
/// let same = mann_whitney_u(&a, &a);
/// assert!(same.p_value > 0.9);
/// ```
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> MannWhitney {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;

    // Rank the pooled sample with midranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&v| (v, 0usize))
        .chain(b.iter().map(|&v| (v, 1usize)))
        .collect();
    // `total_cmp`, not `partial_cmp().unwrap()`: fault-injected runs feed
    // NaN losses into significance tests, and ranking must never panic.
    // NaNs order after +inf, each forming its own "tie" group of one.
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));
    let total = pooled.len();
    let mut ranks = vec![0.0f64; total];
    let mut tie_term = 0.0f64;
    // Adjacent NaNs count as tied (IEEE `==` would split them into
    // singleton groups, under-counting ties and making an all-NaN pool
    // look significant).
    let tied = |x: f64, y: f64| x == y || (x.is_nan() && y.is_nan());
    let mut i = 0;
    while i < total {
        let mut j = i;
        while j + 1 < total && tied(pooled[j + 1].0, pooled[i].0) {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = midrank;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }

    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, g), _)| *g == 0)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    let mean_u = n1 * n2 / 2.0;
    let n = n1 + n2;
    let var_u = n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    // When every pooled sample ties, the tie-corrected variance is exactly
    // zero and z would be 0/0. The negated comparison also catches a NaN
    // variance, so the p-value is always well-defined (never NaN).
    if var_u.is_nan() || var_u <= 0.0 {
        // All values identical: no evidence of difference.
        return MannWhitney {
            u: u1,
            z: 0.0,
            p_value: 1.0,
        };
    }
    // Continuity correction toward the mean.
    let diff = u1 - mean_u;
    let z = (diff.abs() - 0.5).max(0.0) / var_u.sqrt() * diff.signum();
    let p = if total <= MANN_WHITNEY_EXACT_MAX_POOLED_N {
        mann_whitney_exact_p(&ranks, a.len(), u1, mean_u)
    } else {
        2.0 * normal_sf(z.abs())
    };
    MannWhitney {
        u: u1,
        z,
        p_value: p.min(1.0),
    }
}

/// NaN-safe percentile extraction with linear interpolation.
///
/// Sorts a copy of `values` under IEEE total order (`f64::total_cmp`, so NaNs
/// never panic the sort — they collect at the top end) and evaluates each
/// quantile `q ∈ [0, 1]` at fractional rank `q · (n − 1)`, interpolating
/// linearly between the two bracketing order statistics. This is the
/// "linear" / type-7 definition used by numpy's default `percentile`.
///
/// Serving reports lean on this for p50/p99/p999 latency; a fault-hung query
/// that recorded a NaN latency lands in the top tail instead of poisoning the
/// whole distribution.
///
/// # Panics
///
/// Panics when `values` is empty or any `q` lies outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use photon_core::percentiles;
///
/// let v = [4.0, 1.0, 3.0, 2.0];
/// let p = percentiles(&v, &[0.0, 0.5, 1.0]);
/// assert_eq!(p, vec![1.0, 2.5, 4.0]);
/// ```
pub fn percentiles(values: &[f64], qs: &[f64]) -> Vec<f64> {
    assert!(!values.is_empty(), "cannot take percentiles of zero values");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    qs.iter()
        .map(|&q| {
            assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
            let rank = q * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            if lo == hi {
                sorted[lo]
            } else {
                sorted[lo] + frac * (sorted[hi] - sorted[lo])
            }
        })
        .collect()
}

/// Standard normal survival function `P(Z > z)` via the complementary error
/// function (Abramowitz-Stegun 7.1.26 rational approximation, |ε| < 1.5e-7).
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let val = poly * (-x_abs * x_abs).exp();
    if sign_neg {
        2.0 - val
    } else {
        val
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = RunSummary::from_values(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.format(2), "2.00 ±1.00");
        let single = RunSummary::from_values(&[5.0]);
        assert_eq!(single.std, 0.0);
    }

    #[test]
    fn normal_sf_reference_values() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(1.96) - 0.024998).abs() < 1e-4);
        assert!((normal_sf(3.0) - 0.001350).abs() < 1e-5);
        assert!((normal_sf(-1.0) - 0.841345).abs() < 1e-4);
    }

    #[test]
    fn u_test_detects_separation() {
        let a = [0.1, 0.2, 0.15, 0.12, 0.18, 0.11, 0.16, 0.14];
        let b = [0.4, 0.5, 0.45, 0.42, 0.48, 0.41, 0.46, 0.44];
        let t = mann_whitney_u(&a, &b);
        assert!(t.p_value < 1e-3, "p {}", t.p_value);
        assert_eq!(t.annotation(), "***");
    }

    #[test]
    fn u_test_symmetric() {
        let a = [1.0, 3.0, 5.0, 7.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let t_ab = mann_whitney_u(&a, &b);
        let t_ba = mann_whitney_u(&b, &a);
        assert!((t_ab.p_value - t_ba.p_value).abs() < 1e-12);
        assert_eq!(t_ab.annotation(), "ns");
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [2.0; 6];
        let t = mann_whitney_u(&a, &a);
        assert_eq!(t.p_value, 1.0);
        assert_eq!(t.annotation(), "ns");
    }

    #[test]
    fn nan_samples_never_panic_or_poison_p() {
        // Fault-injected runs can hand the test NaN losses; ranking must
        // not panic and the p-value must stay a number.
        let a = [0.1, f64::NAN, 0.2, 0.15];
        let b = [0.4, 0.5, f64::NAN, 0.45];
        let t = mann_whitney_u(&a, &b);
        assert!(t.p_value.is_finite(), "p {}", t.p_value);
        assert!((0.0..=1.0).contains(&t.p_value));
    }

    #[test]
    fn all_nan_pool_has_well_defined_p() {
        // Every pooled sample ties (NaN == NaN under total order ranking →
        // one tie group), so the tie-corrected variance vanishes; the
        // guard must return p = 1 rather than NaN.
        let a = [f64::NAN; 4];
        let t = mann_whitney_u(&a, &a);
        assert_eq!(t.p_value, 1.0);
        assert_eq!(t.z, 0.0);
        assert_eq!(t.annotation(), "ns");
    }

    /// Regression test for the exact small-sample path: at canary sizes
    /// the normal approximation mis-sizes the tail (3-vs-3 full
    /// separation approximates to p ≈ 0.081 where the exact discrete
    /// distribution gives exactly 2/C(6,3) = 0.1), so these pins fail on
    /// approximation-only code.
    #[test]
    fn exact_small_sample_p_values_are_pinned() {
        // 3 vs 3, fully separated: only U = 0 and U = 9 are as extreme,
        // out of C(6,3) = 20 arrangements.
        let t = mann_whitney_u(&[1.0, 2.0, 3.0], &[10.0, 11.0, 12.0]);
        assert!((t.p_value - 2.0 / 20.0).abs() < 1e-12, "p {}", t.p_value);
        // 2 vs 3, fully separated: 2 extreme of C(5,2) = 10.
        let t = mann_whitney_u(&[1.0, 2.0], &[10.0, 11.0, 12.0]);
        assert!((t.p_value - 2.0 / 10.0).abs() < 1e-12, "p {}", t.p_value);
        // 8 vs 8, fully separated: 2 extreme of C(16,8) = 12870 — the
        // smallest attainable two-sided p at this size.
        let a: Vec<f64> = (1..=8).map(f64::from).collect();
        let b: Vec<f64> = (11..=18).map(f64::from).collect();
        let t = mann_whitney_u(&a, &b);
        assert!((t.p_value - 2.0 / 12870.0).abs() < 1e-12, "p {}", t.p_value);
        // 4 vs 4 interleaved: |U − 8| ≥ 2 covers 48 of C(8,4) = 70.
        let t = mann_whitney_u(&[1.0, 3.0, 5.0, 7.0], &[2.0, 4.0, 6.0, 8.0]);
        assert!((t.p_value - 48.0 / 70.0).abs() < 1e-12, "p {}", t.p_value);
    }

    #[test]
    fn exact_path_handles_ties_and_matches_symmetry() {
        // Tied pools stay exact: midranks give tied arrangements a shared
        // U, and swapping the samples must not change the p-value.
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [2.0, 3.0, 3.0, 4.0];
        let t_ab = mann_whitney_u(&a, &b);
        let t_ba = mann_whitney_u(&b, &a);
        assert!((t_ab.p_value - t_ba.p_value).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&t_ab.p_value));
        // Above the documented pooled-size ceiling the normal
        // approximation takes over and must still produce a sane p.
        let big_a: Vec<f64> = (0..11).map(f64::from).collect();
        let big_b: Vec<f64> = (6..17).map(f64::from).collect();
        assert!(big_a.len() + big_b.len() > MANN_WHITNEY_EXACT_MAX_POOLED_N);
        let t = mann_whitney_u(&big_a, &big_b);
        assert!(t.p_value > 0.0 && t.p_value < 1.0, "p {}", t.p_value);
    }

    #[test]
    fn overlapping_samples_moderate_p() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [3.0, 4.0, 5.0, 6.0, 7.0];
        let t = mann_whitney_u(&a, &b);
        assert!(t.p_value > 0.01 && t.p_value < 1.0, "p {}", t.p_value);
    }

    #[test]
    fn annotation_thresholds() {
        let make = |p| MannWhitney {
            u: 0.0,
            z: 0.0,
            p_value: p,
        };
        assert_eq!(make(0.0005).annotation(), "***");
        assert_eq!(make(0.005).annotation(), "**");
        assert_eq!(make(0.03).annotation(), "*");
        assert_eq!(make(0.2).annotation(), "ns");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        let _ = mann_whitney_u(&[], &[1.0]);
    }

    #[test]
    fn percentiles_known_quantiles() {
        // Median of an even-length set interpolates between the two middle
        // order statistics.
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentiles(&v, &[0.5]), vec![2.5]);
        // 1..=101 has exact integer quantiles at every hundredth.
        let big: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let p = percentiles(&big, &[0.0, 0.25, 0.5, 0.75, 0.99, 1.0]);
        assert_eq!(p, vec![1.0, 26.0, 51.0, 76.0, 100.0, 101.0]);
        // Fractional ranks interpolate linearly: q=0.1 over [10, 20, 30]
        // lands at rank 0.2 → 12.
        let p = percentiles(&[30.0, 10.0, 20.0], &[0.1]);
        assert!((p[0] - 12.0).abs() < 1e-12, "{}", p[0]);
    }

    #[test]
    fn percentiles_single_value_and_order() {
        assert_eq!(percentiles(&[7.0], &[0.0, 0.5, 1.0]), vec![7.0, 7.0, 7.0]);
        // Input order must not matter.
        let a = percentiles(&[5.0, 1.0, 4.0, 2.0, 3.0], &[0.25, 0.75]);
        let b = percentiles(&[1.0, 2.0, 3.0, 4.0, 5.0], &[0.25, 0.75]);
        assert_eq!(a, b);
        assert_eq!(a, vec![2.0, 4.0]);
    }

    #[test]
    fn percentiles_nan_safe() {
        // NaNs sort to the top under total order: they occupy the extreme
        // tail rather than panicking the sort or infecting the median.
        let v = [1.0, f64::NAN, 2.0, 3.0];
        let p = percentiles(&v, &[0.0, 1.0]);
        assert_eq!(p[0], 1.0);
        assert!(p[1].is_nan());
        let median = percentiles(&v, &[0.5]);
        assert_eq!(median, vec![2.5]);
    }

    #[test]
    #[should_panic(expected = "zero values")]
    fn percentiles_empty_panics() {
        let _ = percentiles(&[], &[0.5]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn percentiles_bad_quantile_panics() {
        let _ = percentiles(&[1.0], &[1.5]);
    }
}
