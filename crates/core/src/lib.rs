//! # photon-core
//!
//! End-to-end training core of the `photon-zo` reproduction: the optical
//! power-readout classification head, batch metrics, the two-stage trainer
//! (backprop warm start → black-box fine-tune), the experiment harness, and
//! run statistics (including the Mann-Whitney U test used in the paper's
//! significance annotations).
//!
//! The method grid wired through [`Trainer`] covers the paper's comparison:
//! vanilla ZO (`ZO-I`), coordinate-wise ZO (`ZO-co`), CMA-ES, the ablations
//! `ZO-LC` / `ZO-NG`, the full **`ZO-LCNG`** with ideal / calibrated /
//! oracle metric models, and the backprop bounds `BP-ideal` / `BP-calib` /
//! `BP-oracle`.
//!
//! # Examples
//!
//! Train a tiny ONN on a cluster task with vanilla ZO:
//!
//! ```
//! use rand::SeedableRng;
//! use photon_core::{build_task, Method, TaskSpec, TrainConfig, Trainer};
//!
//! let task = build_task(&TaskSpec::quick(4), 7)?;
//! let trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut config = TrainConfig::quick(4);
//! config.epochs = 2;
//! let outcome = trainer.train(Method::ZoGaussian, &config, &mut rng)?;
//! assert!(outcome.final_eval.accuracy >= 0.0);
//! # Ok::<(), photon_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checkpoint;
mod experiment;
mod journal;
mod loss;
mod metrics;
mod report;
mod stats;
mod trainer;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use journal::{
    crc32, epoch_seed, EpochEntry, JournalError, JournalHeader, Replay, RollbackSnapshot,
    RunJournal, RunState,
};
pub use experiment::{build_task, run_method, MethodResult, TaskInstance, TaskKind, TaskSpec};
pub use loss::{mse_loss_and_grad, softmax, ClassificationHead, CoreError};
pub use metrics::{
    batch_inputs, chip_batch_loss, chip_batch_loss_pooled, confusion_matrix, evaluate_chip,
    evaluate_chip_pooled, model_batch_loss, model_batch_loss_and_grad,
    model_batch_loss_and_grad_pooled, Evaluation,
};
pub use report::{downsample, recovery_report, sparkline, trace_summary, CsvWriter, TextTable};
pub use stats::{
    mann_whitney_u, normal_sf, percentiles, MannWhitney, RunSummary,
    MANN_WHITNEY_EXACT_MAX_POOLED_N,
};
pub use photon_exec::WatchdogPolicy;
pub use trainer::{
    AbortReason, DurableOptions, EpochRecord, Method, ModelChoice, RecoveryEvent, RecoveryPolicy,
    RecoveryStats, RunOutcome, TrainConfig, TrainOutcome, Trainer,
};
