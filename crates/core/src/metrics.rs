//! Evaluation metrics: batch losses, accuracy, confusion matrices.

use photon_data::Dataset;
use photon_linalg::{CVector, RVector};
use photon_photonics::{FabricatedChip, Network};

use crate::loss::ClassificationHead;

/// Batches smaller than this are evaluated serially; larger batches fan out
/// across threads (per-sample losses are still summed in index order, so
/// the result is bit-identical either way).
const PARALLEL_THRESHOLD: usize = 64;

/// Mean chip loss over the samples at `indices` (each sample = one chip
/// query).
///
/// Large batches are evaluated on multiple threads; the reduction order is
/// fixed, so results are deterministic regardless of thread count.
///
/// # Panics
///
/// Panics when `indices` is empty or out of range.
pub fn chip_batch_loss(
    chip: &FabricatedChip,
    data: &Dataset,
    indices: &[usize],
    head: &ClassificationHead,
    theta: &RVector,
) -> f64 {
    assert!(!indices.is_empty(), "batch must be non-empty");
    let losses = per_sample_losses(indices, |i| {
        let (x, label) = data.sample(i);
        let y = chip.forward(x, theta);
        head.loss(&y, label)
    });
    losses.iter().sum::<f64>() / indices.len() as f64
}

/// Evaluates `f` for every index, in parallel for large batches, returning
/// the results in index order.
fn per_sample_losses<F>(indices: &[usize], f: F) -> Vec<f64>
where
    F: Fn(usize) -> f64 + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if indices.len() < PARALLEL_THRESHOLD || threads < 2 {
        return indices.iter().map(|&i| f(i)).collect();
    }
    let chunk = indices.len().div_ceil(threads);
    let mut out = vec![0.0; indices.len()];
    crossbeam::thread::scope(|scope| {
        for (slot, idx_chunk) in out.chunks_mut(chunk).zip(indices.chunks(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (o, &i) in slot.iter_mut().zip(idx_chunk) {
                    *o = f(i);
                }
            });
        }
    })
    .expect("loss workers never panic on valid indices");
    out
}

/// Mean model loss over the samples at `indices` (no chip queries).
///
/// # Panics
///
/// Panics when `indices` is empty or out of range.
pub fn model_batch_loss(
    model: &Network,
    data: &Dataset,
    indices: &[usize],
    head: &ClassificationHead,
    theta: &RVector,
) -> f64 {
    assert!(!indices.is_empty(), "batch must be non-empty");
    let mut acc = 0.0;
    for &i in indices {
        let (x, label) = data.sample(i);
        let y = model.forward(x, theta);
        acc += head.loss(&y, label);
    }
    acc / indices.len() as f64
}

/// Mean backprop loss and gradient over a batch on a white-box model.
///
/// # Panics
///
/// Panics when `indices` is empty or out of range.
pub fn model_batch_loss_and_grad(
    model: &Network,
    data: &Dataset,
    indices: &[usize],
    head: &ClassificationHead,
    theta: &RVector,
) -> (f64, RVector) {
    assert!(!indices.is_empty(), "batch must be non-empty");
    let mut loss_acc = 0.0;
    let mut grad_acc = RVector::zeros(theta.len());
    for &i in indices {
        let (x, label) = data.sample(i);
        let (y, tape) = model.forward_tape(x, theta);
        let (loss, gy) = head.loss_and_grad(&y, label);
        let (_, grad) = model.vjp(&tape, theta, &gy);
        loss_acc += loss;
        grad_acc += &grad;
    }
    let scale = 1.0 / indices.len() as f64;
    (loss_acc * scale, grad_acc.scale(scale))
}

/// Accuracy and mean loss of the chip over a whole dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Fraction of correctly classified samples.
    pub accuracy: f64,
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Samples evaluated.
    pub samples: usize,
}

/// Evaluates the chip on every sample of `data` (costs `data.len()` chip
/// queries).
///
/// # Panics
///
/// Panics on an empty dataset.
pub fn evaluate_chip(
    chip: &FabricatedChip,
    data: &Dataset,
    head: &ClassificationHead,
    theta: &RVector,
) -> Evaluation {
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let mut correct = 0usize;
    let mut loss_acc = 0.0;
    for i in 0..data.len() {
        let (x, label) = data.sample(i);
        let y = chip.forward(x, theta);
        if head.predict(&y) == label {
            correct += 1;
        }
        loss_acc += head.loss(&y, label);
    }
    Evaluation {
        accuracy: correct as f64 / data.len() as f64,
        loss: loss_acc / data.len() as f64,
        samples: data.len(),
    }
}

/// Confusion matrix `counts[truth][predicted]` of the chip on a dataset.
///
/// # Panics
///
/// Panics on an empty dataset.
pub fn confusion_matrix(
    chip: &FabricatedChip,
    data: &Dataset,
    head: &ClassificationHead,
    theta: &RVector,
) -> Vec<Vec<usize>> {
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let c = head.num_classes();
    let mut counts = vec![vec![0usize; c]; c];
    for i in 0..data.len() {
        let (x, label) = data.sample(i);
        let y = chip.forward(x, theta);
        counts[label][head.predict(&y)] += 1;
    }
    counts
}

/// Helper: the feature vectors of the samples at `indices` (the Fisher
/// inputs of the LCNG metric).
pub fn batch_inputs(data: &Dataset, indices: &[usize]) -> Vec<CVector> {
    indices.iter().map(|&i| data.sample(i).0.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::ClassificationHead;
    use photon_data::GaussianClusters;
    use photon_photonics::{Architecture, ErrorModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (FabricatedChip, Dataset, ClassificationHead, RVector) {
        let mut rng = StdRng::seed_from_u64(3);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let data = GaussianClusters::new(4, 4, 0.1)
            .generate(20, &mut rng)
            .unwrap();
        let head = ClassificationHead::new(4, 4, 10.0).unwrap();
        let theta = chip.init_params(&mut rng);
        (chip, data, head, theta)
    }

    #[test]
    fn chip_and_oracle_losses_agree() {
        let (chip, data, head, theta) = setup();
        let idx: Vec<usize> = (0..10).collect();
        let l_chip = chip_batch_loss(&chip, &data, &idx, &head, &theta);
        let l_model = model_batch_loss(&chip.oracle_network(), &data, &idx, &head, &theta);
        assert!((l_chip - l_model).abs() < 1e-12);
    }

    #[test]
    fn backprop_gradient_matches_finite_difference() {
        let (chip, data, head, theta) = setup();
        let model = chip.oracle_network();
        let idx = [0usize, 3, 7];
        let (_, grad) = model_batch_loss_and_grad(&model, &data, &idx, &head, &theta);
        let eps = 1e-6;
        for k in [0usize, 5, theta.len() - 1] {
            let mut tp = theta.clone();
            tp[k] += eps;
            let mut tm = theta.clone();
            tm[k] -= eps;
            let fd = (model_batch_loss(&model, &data, &idx, &head, &tp)
                - model_batch_loss(&model, &data, &idx, &head, &tm))
                / (2.0 * eps);
            assert!(
                (fd - grad[k]).abs() < 1e-5,
                "param {k}: {fd} vs {}",
                grad[k]
            );
        }
    }

    #[test]
    fn evaluation_counts() {
        let (chip, data, head, theta) = setup();
        let ev = evaluate_chip(&chip, &data, &head, &theta);
        assert_eq!(ev.samples, 20);
        assert!((0.0..=1.0).contains(&ev.accuracy));
        assert!(ev.loss.is_finite() && ev.loss > 0.0);
    }

    #[test]
    fn confusion_matrix_rows_sum_to_class_counts() {
        let (chip, data, head, theta) = setup();
        let cm = confusion_matrix(&chip, &data, &head, &theta);
        let counts = data.class_counts();
        for (c, row) in cm.iter().enumerate() {
            assert_eq!(row.iter().sum::<usize>(), counts[c]);
        }
    }

    #[test]
    fn batch_inputs_extracts_features() {
        let (_, data, _, _) = setup();
        let inputs = batch_inputs(&data, &[1, 4]);
        assert_eq!(inputs.len(), 2);
        assert_eq!(inputs[0], data.sample(1).0.clone());
    }

    #[test]
    fn parallel_and_serial_losses_agree_bitwise() {
        // Build a batch big enough to trip the parallel path and compare
        // with a forced-serial evaluation.
        let mut rng = StdRng::seed_from_u64(77);
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let data = GaussianClusters::new(4, 4, 0.1)
            .generate(256, &mut rng)
            .unwrap();
        let head = ClassificationHead::new(4, 4, 10.0).unwrap();
        let theta = chip.init_params(&mut rng);
        let idx: Vec<usize> = (0..256).collect();

        let parallel = chip_batch_loss(&chip, &data, &idx, &head, &theta);
        let mut serial_sum = 0.0;
        for &i in &idx {
            let (x, label) = data.sample(i);
            serial_sum += head.loss(&chip.forward(x, &theta), label);
        }
        let serial = serial_sum / idx.len() as f64;
        assert_eq!(parallel, serial, "parallel reduction must be bit-stable");
        // Query counter includes all parallel forwards.
        assert_eq!(chip.query_count(), 2 * 256);
    }
}
