//! Evaluation metrics: batch losses, accuracy, confusion matrices.

use photon_data::Dataset;
use photon_exec::{tree_reduce, tree_sum, ExecPool};
use photon_linalg::{CVector, RVector};
use photon_photonics::{BatchScratch, Network, NetworkScratch, OnnChip};

use crate::loss::ClassificationHead;

/// Number of samples per batched chip evaluation block.
///
/// A *fixed* constant (never derived from the pool size): the work items
/// handed to the pool are always the same blocks in the same order, and
/// each sample's compiled-GEMM output is bitwise-independent of which block
/// or thread computed it — together that keeps every pooled reduction
/// bitwise pool-size-invariant.
const BATCH_BLOCK: usize = 32;

/// The index blocks batched chip evaluation fans out over.
fn batch_blocks(indices: &[usize]) -> Vec<&[usize]> {
    indices.chunks(BATCH_BLOCK).collect()
}

/// Mean chip loss over the samples at `indices` (each sample = one chip
/// query), evaluated on the [`ExecPool::from_env`] pool.
///
/// # Panics
///
/// Panics when `indices` is empty or out of range.
pub fn chip_batch_loss<C: OnnChip>(
    chip: &C,
    data: &Dataset,
    indices: &[usize],
    head: &ClassificationHead,
    theta: &RVector,
) -> f64 {
    chip_batch_loss_pooled(chip, data, indices, head, theta, &ExecPool::from_env())
}

/// Mean chip loss over the samples at `indices`, evaluated on `pool`.
///
/// Samples are evaluated in fixed [`BATCH_BLOCK`]-sized blocks through
/// [`OnnChip::forward_batch_into`], so compiled chips amortize one unitary
/// compile across a whole block instead of re-walking the op list per
/// sample. Per-sample losses are flattened back into index order and
/// combined along a fixed-shape reduction tree, so a noise-free chip yields
/// a bitwise-identical mean for every pool size. Every worker reuses one
/// [`BatchScratch`], so the steady-state forward path performs no per-sample
/// heap allocation.
///
/// # Panics
///
/// Panics when `indices` is empty or out of range.
pub fn chip_batch_loss_pooled<C: OnnChip>(
    chip: &C,
    data: &Dataset,
    indices: &[usize],
    head: &ClassificationHead,
    theta: &RVector,
    pool: &ExecPool,
) -> f64 {
    assert!(!indices.is_empty(), "batch must be non-empty");
    let blocks = batch_blocks(indices);
    let per_block = pool.map_with(&blocks, BatchScratch::new, |scratch, _, block| {
        let xs: Vec<&CVector> = block.iter().map(|&i| data.sample(i).0).collect();
        let ys = chip.forward_batch_into(&xs, theta, scratch);
        ys.iter()
            .zip(block.iter())
            .map(|(y, &i)| head.loss(y, data.sample(i).1))
            .collect::<Vec<f64>>()
    });
    let losses: Vec<f64> = per_block.into_iter().flatten().collect();
    tree_sum(&losses) / indices.len() as f64
}

/// Mean model loss over the samples at `indices` (no chip queries).
///
/// # Panics
///
/// Panics when `indices` is empty or out of range.
pub fn model_batch_loss(
    model: &Network,
    data: &Dataset,
    indices: &[usize],
    head: &ClassificationHead,
    theta: &RVector,
) -> f64 {
    assert!(!indices.is_empty(), "batch must be non-empty");
    let mut scratch = NetworkScratch::new();
    let mut acc = 0.0;
    for &i in indices {
        let (x, label) = data.sample(i);
        let y = model.forward_into(x, theta, &mut scratch);
        acc += head.loss(y, label);
    }
    acc / indices.len() as f64
}

/// Mean backprop loss and gradient over a batch on a white-box model,
/// evaluated serially (see [`model_batch_loss_and_grad_pooled`]).
///
/// # Panics
///
/// Panics when `indices` is empty or out of range.
pub fn model_batch_loss_and_grad(
    model: &Network,
    data: &Dataset,
    indices: &[usize],
    head: &ClassificationHead,
    theta: &RVector,
) -> (f64, RVector) {
    model_batch_loss_and_grad_pooled(model, data, indices, head, theta, &ExecPool::serial())
}

/// Mean backprop loss and gradient over a batch, with the per-sample
/// forward/backward passes fanned out across `pool`.
///
/// Losses and per-sample gradients are combined along fixed-shape reduction
/// trees, so the result is bitwise identical for every pool size.
///
/// # Panics
///
/// Panics when `indices` is empty or out of range.
pub fn model_batch_loss_and_grad_pooled(
    model: &Network,
    data: &Dataset,
    indices: &[usize],
    head: &ClassificationHead,
    theta: &RVector,
    pool: &ExecPool,
) -> (f64, RVector) {
    assert!(!indices.is_empty(), "batch must be non-empty");
    let per_sample = pool.map_with(
        indices,
        || (NetworkScratch::new(), model.new_tape(), CVector::zeros(0)),
        |(scratch, tape, y), _, &i| {
            let (x, label) = data.sample(i);
            model.forward_tape_into(x, theta, scratch, y, tape);
            let (loss, gy) = head.loss_and_grad(y, label);
            let (_, grad) = model.vjp(tape, theta, &gy);
            (loss, grad)
        },
    );
    let scale = 1.0 / indices.len() as f64;
    let losses: Vec<f64> = per_sample.iter().map(|(l, _)| *l).collect();
    let grads: Vec<RVector> = per_sample.into_iter().map(|(_, g)| g).collect();
    let grad = tree_reduce(grads, &|mut a: RVector, b: RVector| {
        a += &b;
        a
    })
    .expect("batch is non-empty");
    (tree_sum(&losses) * scale, grad.scale(scale))
}

/// Accuracy and mean loss of the chip over a whole dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Fraction of correctly classified samples.
    pub accuracy: f64,
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Samples evaluated.
    pub samples: usize,
}

/// Evaluates the chip on every sample of `data` (costs `data.len()` chip
/// queries).
///
/// # Panics
///
/// Panics on an empty dataset.
pub fn evaluate_chip<C: OnnChip>(
    chip: &C,
    data: &Dataset,
    head: &ClassificationHead,
    theta: &RVector,
) -> Evaluation {
    evaluate_chip_pooled(chip, data, head, theta, &ExecPool::from_env())
}

/// Evaluates the chip on every sample of `data` using `pool` (costs
/// `data.len()` chip queries).
///
/// Samples run in fixed [`BATCH_BLOCK`]-sized blocks through
/// [`OnnChip::forward_batch_into`] (one compile + one GEMM per block on
/// compiled chips). Losses are flattened back into index order and combined
/// along a fixed-shape reduction tree, so a noise-free chip yields a
/// bitwise-identical evaluation for every pool size.
///
/// # Panics
///
/// Panics on an empty dataset.
pub fn evaluate_chip_pooled<C: OnnChip>(
    chip: &C,
    data: &Dataset,
    head: &ClassificationHead,
    theta: &RVector,
    pool: &ExecPool,
) -> Evaluation {
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let indices: Vec<usize> = (0..data.len()).collect();
    let blocks = batch_blocks(&indices);
    let per_block = pool.map_with(&blocks, BatchScratch::new, |scratch, _, block| {
        let xs: Vec<&CVector> = block.iter().map(|&i| data.sample(i).0).collect();
        let ys = chip.forward_batch_into(&xs, theta, scratch);
        ys.iter()
            .zip(block.iter())
            .map(|(y, &i)| {
                let label = data.sample(i).1;
                (head.predict(y) == label, head.loss(y, label))
            })
            .collect::<Vec<(bool, f64)>>()
    });
    let per_sample: Vec<(bool, f64)> = per_block.into_iter().flatten().collect();
    let correct = per_sample.iter().filter(|(hit, _)| *hit).count();
    let losses: Vec<f64> = per_sample.iter().map(|(_, l)| *l).collect();
    Evaluation {
        accuracy: correct as f64 / data.len() as f64,
        loss: tree_sum(&losses) / data.len() as f64,
        samples: data.len(),
    }
}

/// Confusion matrix `counts[truth][predicted]` of the chip on a dataset.
///
/// Runs in [`BATCH_BLOCK`]-sized blocks with one reused [`BatchScratch`],
/// so the sweep performs no per-sample heap allocation.
///
/// # Panics
///
/// Panics on an empty dataset.
pub fn confusion_matrix<C: OnnChip>(
    chip: &C,
    data: &Dataset,
    head: &ClassificationHead,
    theta: &RVector,
) -> Vec<Vec<usize>> {
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let c = head.num_classes();
    let mut counts = vec![vec![0usize; c]; c];
    let indices: Vec<usize> = (0..data.len()).collect();
    let mut scratch = BatchScratch::new();
    for block in batch_blocks(&indices) {
        let xs: Vec<&CVector> = block.iter().map(|&i| data.sample(i).0).collect();
        let ys = chip.forward_batch_into(&xs, theta, &mut scratch);
        for (y, &i) in ys.iter().zip(block.iter()) {
            counts[data.sample(i).1][head.predict(y)] += 1;
        }
    }
    counts
}

/// Helper: the feature vectors of the samples at `indices` (the Fisher
/// inputs of the LCNG metric).
pub fn batch_inputs(data: &Dataset, indices: &[usize]) -> Vec<CVector> {
    indices.iter().map(|&i| data.sample(i).0.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::ClassificationHead;
    use photon_data::GaussianClusters;
    use photon_photonics::{Architecture, ErrorModel, FabricatedChip};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (FabricatedChip, Dataset, ClassificationHead, RVector) {
        let mut rng = StdRng::seed_from_u64(3);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let data = GaussianClusters::new(4, 4, 0.1)
            .generate(20, &mut rng)
            .unwrap();
        let head = ClassificationHead::new(4, 4, 10.0).unwrap();
        let theta = chip.init_params(&mut rng);
        (chip, data, head, theta)
    }

    #[test]
    fn chip_and_oracle_losses_agree() {
        let (chip, data, head, theta) = setup();
        let idx: Vec<usize> = (0..10).collect();
        let l_chip = chip_batch_loss(&chip, &data, &idx, &head, &theta);
        let l_model = model_batch_loss(&chip.oracle_network(), &data, &idx, &head, &theta);
        assert!((l_chip - l_model).abs() < 1e-12);
    }

    #[test]
    fn backprop_gradient_matches_finite_difference() {
        let (chip, data, head, theta) = setup();
        let model = chip.oracle_network();
        let idx = [0usize, 3, 7];
        let (_, grad) = model_batch_loss_and_grad(&model, &data, &idx, &head, &theta);
        let eps = 1e-6;
        for k in [0usize, 5, theta.len() - 1] {
            let mut tp = theta.clone();
            tp[k] += eps;
            let mut tm = theta.clone();
            tm[k] -= eps;
            let fd = (model_batch_loss(&model, &data, &idx, &head, &tp)
                - model_batch_loss(&model, &data, &idx, &head, &tm))
                / (2.0 * eps);
            assert!(
                (fd - grad[k]).abs() < 1e-5,
                "param {k}: {fd} vs {}",
                grad[k]
            );
        }
    }

    #[test]
    fn evaluation_counts() {
        let (chip, data, head, theta) = setup();
        let ev = evaluate_chip(&chip, &data, &head, &theta);
        assert_eq!(ev.samples, 20);
        assert!((0.0..=1.0).contains(&ev.accuracy));
        assert!(ev.loss.is_finite() && ev.loss > 0.0);
    }

    #[test]
    fn confusion_matrix_rows_sum_to_class_counts() {
        let (chip, data, head, theta) = setup();
        let cm = confusion_matrix(&chip, &data, &head, &theta);
        let counts = data.class_counts();
        for (c, row) in cm.iter().enumerate() {
            assert_eq!(row.iter().sum::<usize>(), counts[c]);
        }
    }

    #[test]
    fn batch_inputs_extracts_features() {
        let (_, data, _, _) = setup();
        let inputs = batch_inputs(&data, &[1, 4]);
        assert_eq!(inputs.len(), 2);
        assert_eq!(inputs[0], data.sample(1).0.clone());
    }

    #[test]
    fn parallel_and_serial_losses_agree_bitwise() {
        // The serial pool and every parallel pool must produce the same
        // bits: index-ordered evaluation + fixed-shape reduction tree.
        let mut rng = StdRng::seed_from_u64(77);
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let data = GaussianClusters::new(4, 4, 0.1)
            .generate(256, &mut rng)
            .unwrap();
        let head = ClassificationHead::new(4, 4, 10.0).unwrap();
        let theta = chip.init_params(&mut rng);
        let idx: Vec<usize> = (0..256).collect();

        let serial =
            chip_batch_loss_pooled(&chip, &data, &idx, &head, &theta, &ExecPool::serial());
        for threads in [2usize, 4, 8] {
            let parallel =
                chip_batch_loss_pooled(&chip, &data, &idx, &head, &theta, &ExecPool::new(threads));
            assert_eq!(
                serial.to_bits(),
                parallel.to_bits(),
                "pool({threads}) must match serial bitwise"
            );
        }
        // Query counter includes every pooled forward: serial + 3 pools.
        assert_eq!(chip.query_count(), 4 * 256);

        // The pooled evaluation sweep is thread-count-invariant too.
        let ev_serial = evaluate_chip_pooled(&chip, &data, &head, &theta, &ExecPool::serial());
        let ev_parallel = evaluate_chip_pooled(&chip, &data, &head, &theta, &ExecPool::new(4));
        assert_eq!(ev_serial.loss.to_bits(), ev_parallel.loss.to_bits());
        assert_eq!(ev_serial.accuracy, ev_parallel.accuracy);
    }
}
