//! Checkpointing: persist and restore `(architecture, parameters,
//! error assignment)` triples.
//!
//! Training a chip is expensive in queries; calibrating one is expensive in
//! lab time. Checkpoints make both resumable. The format is a
//! self-contained, versioned plain-text layout (the approved dependency set
//! has no serialization *format* crate, so the writer/parser live here).

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::str::FromStr;

use photon_linalg::RVector;
use photon_photonics::{Architecture, ErrorVector, ModuleSpec};

/// A restorable training/calibration snapshot.
///
/// # Examples
///
/// ```
/// use photon_core::Checkpoint;
/// use photon_linalg::RVector;
/// use photon_photonics::Architecture;
///
/// let arch = Architecture::single_mesh(4, 2)?;
/// let theta = RVector::zeros(arch.param_count());
/// let ckpt = Checkpoint::new(arch, theta, None);
/// let text = ckpt.to_string();
/// let back: Checkpoint = text.parse()?;
/// assert_eq!(back, ckpt);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The network blueprint.
    pub architecture: Architecture,
    /// Trained parameter vector.
    pub theta: RVector,
    /// Calibrated (or oracle) error assignment, when available.
    pub errors: Option<ErrorVector>,
}

/// Errors raised when reading a checkpoint.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// The text is not a valid checkpoint.
    Parse {
        /// 1-based line where parsing failed.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

const MAGIC: &str = "photon-zo-checkpoint v1";

impl Checkpoint {
    /// Bundles a snapshot.
    ///
    /// # Panics
    ///
    /// Panics when `theta.len()` does not match the architecture's
    /// parameter count.
    pub fn new(architecture: Architecture, theta: RVector, errors: Option<ErrorVector>) -> Self {
        assert_eq!(
            theta.len(),
            architecture.param_count(),
            "theta length must match the architecture"
        );
        Checkpoint {
            architecture,
            theta,
            errors,
        }
    }

    /// Writes the checkpoint to `path`, creating parent directories.
    ///
    /// The write is atomic: the text goes to a temporary file in the same
    /// directory which is then renamed over `path`, so a crash mid-write
    /// can never clobber the last good checkpoint (the rename is atomic
    /// within one filesystem).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        if let Err(e) = fs::write(&tmp, self.to_string()) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Reads a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] or [`CheckpointError::Parse`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        fs::read_to_string(path)?.parse()
    }
}

impl fmt::Display for Checkpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{MAGIC}")?;
        writeln!(f, "arch {}", self.architecture.specs().len())?;
        for spec in self.architecture.specs() {
            match *spec {
                ModuleSpec::Clements { dim, layers } => writeln!(f, "clements {dim} {layers}")?,
                ModuleSpec::Reck { dim } => writeln!(f, "reck {dim}")?,
                ModuleSpec::PhaseDiag { dim } => writeln!(f, "phasediag {dim}")?,
                ModuleSpec::ModRelu { dim } => writeln!(f, "modrelu {dim}")?,
                ModuleSpec::ElectroOptic { dim, alpha, gain } => {
                    writeln!(f, "electrooptic {dim} {alpha:?} {gain:?}")?
                }
            }
        }
        writeln!(f, "theta {}", self.theta.len())?;
        for v in self.theta.iter() {
            // {:e} keeps full round-trip precision via the debug fallback.
            writeln!(f, "{v:?}")?;
        }
        match &self.errors {
            None => writeln!(f, "errors none")?,
            Some(ev) => {
                writeln!(
                    f,
                    "errors {} {}",
                    ev.n_beam_splitters(),
                    ev.n_phase_shifters()
                )?;
                for v in ev.to_flat() {
                    writeln!(f, "{v:?}")?;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for Checkpoint {
    type Err = CheckpointError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut lines = s.lines().enumerate();
        let mut next = |expect: &str| -> Result<(usize, String), CheckpointError> {
            lines
                .next()
                .map(|(i, l)| (i + 1, l.trim().to_string()))
                .ok_or_else(|| CheckpointError::Parse {
                    line: 0,
                    message: format!("unexpected end of file, expected {expect}"),
                })
        };
        let parse_err = |line: usize, message: String| CheckpointError::Parse { line, message };

        let (line, magic) = next("magic header")?;
        if magic != MAGIC {
            return Err(parse_err(line, format!("bad magic {magic:?}")));
        }

        let (line, arch_header) = next("arch header")?;
        let n_specs: usize = arch_header
            .strip_prefix("arch ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| parse_err(line, "expected `arch <count>`".into()))?;
        let mut specs = Vec::with_capacity(n_specs);
        for _ in 0..n_specs {
            let (line, l) = next("module spec")?;
            let parts: Vec<&str> = l.split_whitespace().collect();
            let spec = match parts.as_slice() {
                ["clements", dim, layers] => {
                    let dim = dim.parse().map_err(|_| parse_err(line, "bad dim".into()))?;
                    let layers = layers
                        .parse()
                        .map_err(|_| parse_err(line, "bad layers".into()))?;
                    ModuleSpec::Clements { dim, layers }
                }
                ["reck", dim] => ModuleSpec::Reck {
                    dim: dim.parse().map_err(|_| parse_err(line, "bad dim".into()))?,
                },
                ["phasediag", dim] => ModuleSpec::PhaseDiag {
                    dim: dim.parse().map_err(|_| parse_err(line, "bad dim".into()))?,
                },
                ["modrelu", dim] => ModuleSpec::ModRelu {
                    dim: dim.parse().map_err(|_| parse_err(line, "bad dim".into()))?,
                },
                ["electrooptic", dim, alpha, gain] => ModuleSpec::ElectroOptic {
                    dim: dim.parse().map_err(|_| parse_err(line, "bad dim".into()))?,
                    alpha: alpha
                        .parse()
                        .map_err(|_| parse_err(line, "bad alpha".into()))?,
                    gain: gain
                        .parse()
                        .map_err(|_| parse_err(line, "bad gain".into()))?,
                },
                _ => return Err(parse_err(line, format!("unknown module spec {l:?}"))),
            };
            specs.push(spec);
        }
        let architecture = Architecture::new(specs)
            .map_err(|e| parse_err(0, format!("invalid architecture: {e}")))?;

        let (line, theta_header) = next("theta header")?;
        let n_theta: usize = theta_header
            .strip_prefix("theta ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| parse_err(line, "expected `theta <count>`".into()))?;
        let mut theta = Vec::with_capacity(n_theta);
        for _ in 0..n_theta {
            let (line, l) = next("theta value")?;
            theta.push(
                l.parse::<f64>()
                    .map_err(|_| parse_err(line, format!("bad float {l:?}")))?,
            );
        }
        let theta = RVector::from_vec(theta);
        if theta.len() != architecture.param_count() {
            return Err(parse_err(
                0,
                format!(
                    "theta has {} values but architecture needs {}",
                    theta.len(),
                    architecture.param_count()
                ),
            ));
        }

        let (line, err_header) = next("errors header")?;
        let errors = if err_header == "errors none" {
            None
        } else {
            let rest = err_header
                .strip_prefix("errors ")
                .ok_or_else(|| parse_err(line, "expected `errors …`".into()))?;
            let mut it = rest.split_whitespace();
            let n_bs: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(line, "bad beam-splitter count".into()))?;
            let n_ps: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(line, "bad phase-shifter count".into()))?;
            let total = n_bs + 2 * n_ps;
            let mut flat = Vec::with_capacity(total);
            for _ in 0..total {
                let (line, l) = next("error value")?;
                flat.push(
                    l.parse::<f64>()
                        .map_err(|_| parse_err(line, format!("bad float {l:?}")))?,
                );
            }
            let expected = architecture.error_slots();
            if (n_bs, n_ps) != expected {
                return Err(parse_err(
                    0,
                    format!(
                        "error slots {:?} do not match architecture {expected:?}",
                        (n_bs, n_ps)
                    ),
                ));
            }
            Some(
                ErrorVector::from_flat(n_bs, n_ps, &flat)
                    .map_err(|e| parse_err(0, format!("invalid error vector: {e}")))?,
            )
        };

        Ok(Checkpoint {
            architecture,
            theta,
            errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_photonics::ErrorModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_checkpoint(with_errors: bool) -> Checkpoint {
        let mut rng = StdRng::seed_from_u64(5);
        let arch = Architecture::two_mesh_classifier(4, 2).unwrap();
        let theta = arch.build_ideal().init_params(&mut rng);
        let errors = with_errors.then(|| {
            let (n_bs, n_ps) = arch.error_slots();
            ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(1.0), &mut rng)
        });
        Checkpoint::new(arch, theta, errors)
    }

    #[test]
    fn text_roundtrip_without_errors() {
        let ckpt = sample_checkpoint(false);
        let back: Checkpoint = ckpt.to_string().parse().unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn text_roundtrip_with_errors_is_exact() {
        let ckpt = sample_checkpoint(true);
        let back: Checkpoint = ckpt.to_string().parse().unwrap();
        // Bit-exact floats via the debug-format round trip.
        assert_eq!(back, ckpt);
    }

    #[test]
    fn file_roundtrip() {
        let ckpt = sample_checkpoint(true);
        let dir = std::env::temp_dir().join("photon_zo_ckpt_test");
        let path = dir.join("nested/run1.ckpt");
        ckpt.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, ckpt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_atomic_and_overwrites() {
        let ckpt = sample_checkpoint(true);
        let dir = std::env::temp_dir().join("photon_zo_ckpt_atomic_test");
        let path = dir.join("run.ckpt");
        // Overwriting an older (different) checkpoint leaves the new one.
        sample_checkpoint(false).save(&path).unwrap();
        ckpt.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        // The temporary sibling never survives a successful save.
        let tmp = dir.join("run.ckpt.tmp");
        assert!(!tmp.exists(), "temp file must be renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eo_activation_roundtrips() {
        let arch = Architecture::two_mesh_eo_classifier(4, 2, 0.125, 1.75).unwrap();
        let theta = RVector::zeros(arch.param_count());
        let ckpt = Checkpoint::new(arch, theta, None);
        let back: Checkpoint = ckpt.to_string().parse().unwrap();
        assert_eq!(back, ckpt);
        assert!(ckpt.to_string().contains("electrooptic 4 0.125 1.75"));
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/photon.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = "not a checkpoint".parse::<Checkpoint>().unwrap_err();
        assert!(matches!(err, CheckpointError::Parse { line: 1, .. }));
    }

    #[test]
    fn truncated_theta_rejected() {
        let ckpt = sample_checkpoint(false);
        let text = ckpt.to_string();
        let truncated: String = text.lines().take(8).collect::<Vec<_>>().join("\n");
        assert!(truncated.parse::<Checkpoint>().is_err());
    }

    #[test]
    fn wrong_theta_count_rejected() {
        let mut text = String::from(MAGIC);
        text.push_str("\narch 1\nphasediag 3\ntheta 2\n0.0\n0.0\nerrors none\n");
        let err = text.parse::<Checkpoint>().unwrap_err();
        assert!(err.to_string().contains("architecture needs"));
    }

    #[test]
    fn rebuilding_network_from_checkpoint_matches() {
        // The intended workflow: restore a calibrated model + theta and get
        // identical forward behavior.
        let ckpt = sample_checkpoint(true);
        let back: Checkpoint = ckpt.to_string().parse().unwrap();
        let net_a = ckpt
            .architecture
            .build_with_errors(ckpt.errors.as_ref().unwrap())
            .unwrap();
        let net_b = back
            .architecture
            .build_with_errors(back.errors.as_ref().unwrap())
            .unwrap();
        let x = photon_linalg::CVector::basis(4, 1);
        let ya = net_a.forward(&x, &ckpt.theta);
        let yb = net_b.forward(&x, &back.theta);
        assert!((&ya - &yb).max_abs() == 0.0);
    }

    #[test]
    #[should_panic(expected = "theta length")]
    fn mismatched_theta_panics() {
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let _ = Checkpoint::new(arch, RVector::zeros(1), None);
    }
}
