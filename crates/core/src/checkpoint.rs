//! Checkpointing: persist and restore `(architecture, parameters,
//! error assignment)` triples.
//!
//! Training a chip is expensive in queries; calibrating one is expensive in
//! lab time. Checkpoints make both resumable. The format is a
//! self-contained, versioned plain-text layout (the approved dependency set
//! has no serialization *format* crate, so the writer/parser live here).

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::str::FromStr;

use photon_linalg::RVector;
use photon_photonics::{Architecture, ErrorVector, ModuleSpec};

/// A restorable training/calibration snapshot.
///
/// # Examples
///
/// ```
/// use photon_core::Checkpoint;
/// use photon_linalg::RVector;
/// use photon_photonics::Architecture;
///
/// let arch = Architecture::single_mesh(4, 2)?;
/// let theta = RVector::zeros(arch.param_count());
/// let ckpt = Checkpoint::new(arch, theta, None);
/// let text = ckpt.to_string();
/// let back: Checkpoint = text.parse()?;
/// assert_eq!(back, ckpt);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The network blueprint.
    pub architecture: Architecture,
    /// Trained parameter vector.
    pub theta: RVector,
    /// Calibrated (or oracle) error assignment, when available.
    pub errors: Option<ErrorVector>,
}

/// Errors raised when reading a checkpoint.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// The text is not a valid checkpoint.
    Parse {
        /// 1-based line where parsing failed.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

use crate::journal::crc32;

const MAGIC_V1: &str = "photon-zo-checkpoint v1";
const MAGIC_V2: &str = "photon-zo-checkpoint v2";

impl Checkpoint {
    /// Bundles a snapshot.
    ///
    /// # Panics
    ///
    /// Panics when `theta.len()` does not match the architecture's
    /// parameter count.
    pub fn new(architecture: Architecture, theta: RVector, errors: Option<ErrorVector>) -> Self {
        assert_eq!(
            theta.len(),
            architecture.param_count(),
            "theta length must match the architecture"
        );
        Checkpoint {
            architecture,
            theta,
            errors,
        }
    }

    /// Writes the checkpoint to `path`, creating parent directories.
    ///
    /// The write is atomic *and durable*: the text goes to a temporary file
    /// in the same directory, which is fsynced and then renamed over `path`
    /// (atomic within one filesystem); the parent directory is fsynced after
    /// the rename so the new name itself survives a crash. A kill at any
    /// instant leaves either the old checkpoint or the new one — never a
    /// half-written file under the final name.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        let write_synced = || -> io::Result<()> {
            use io::Write;
            let mut file = fs::File::create(&tmp)?;
            file.write_all(self.to_string().as_bytes())?;
            // The temp file's bytes must be on disk *before* the rename
            // publishes them under the final name.
            file.sync_all()
        };
        if let Err(e) = write_synced() {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        crate::journal::sync_parent_dir(path);
        Ok(())
    }

    /// Reads a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] or [`CheckpointError::Parse`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        fs::read_to_string(path)?.parse()
    }
}

impl Checkpoint {
    /// The v2 body: everything except the trailing checksum line.
    fn body_text(&self) -> String {
        use fmt::Write;
        let mut f = String::with_capacity(64 * (1 + self.theta.len()));
        let _ = writeln!(f, "{MAGIC_V2}");
        let _ = writeln!(f, "arch {}", self.architecture.specs().len());
        for spec in self.architecture.specs() {
            match *spec {
                ModuleSpec::Clements { dim, layers } => {
                    let _ = writeln!(f, "clements {dim} {layers}");
                }
                ModuleSpec::Reck { dim } => {
                    let _ = writeln!(f, "reck {dim}");
                }
                ModuleSpec::PhaseDiag { dim } => {
                    let _ = writeln!(f, "phasediag {dim}");
                }
                ModuleSpec::ModRelu { dim } => {
                    let _ = writeln!(f, "modrelu {dim}");
                }
                ModuleSpec::ElectroOptic { dim, alpha, gain } => {
                    let _ = writeln!(f, "electrooptic {dim} {alpha:?} {gain:?}");
                }
            }
        }
        let _ = writeln!(f, "theta {}", self.theta.len());
        for v in self.theta.iter() {
            // {:?} keeps full round-trip precision.
            let _ = writeln!(f, "{v:?}");
        }
        match &self.errors {
            None => {
                let _ = writeln!(f, "errors none");
            }
            Some(ev) => {
                let _ = writeln!(
                    f,
                    "errors {} {}",
                    ev.n_beam_splitters(),
                    ev.n_phase_shifters()
                );
                for v in ev.to_flat() {
                    let _ = writeln!(f, "{v:?}");
                }
            }
        }
        f
    }
}

impl fmt::Display for Checkpoint {
    /// Writes the current (v2) format: the v1 body under a v2 magic line,
    /// terminated by a `checksum <crc32-hex>` line covering every preceding
    /// byte. The parser still accepts checksum-less v1 files.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body = self.body_text();
        writeln!(f, "{body}checksum {:08x}", crc32(body.as_bytes()))
    }
}

impl FromStr for Checkpoint {
    type Err = CheckpointError;

    /// Parses either format version. v2 (the current writer's output) must
    /// carry a valid trailing `checksum` line; v1 (older files) has none.
    /// Both versions are otherwise parsed strictly: every error names the
    /// offending 1-based line, and trailing content — including duplicated
    /// sections — is rejected.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parse_err = |line: usize, message: String| CheckpointError::Parse { line, message };
        let first = s.lines().next().unwrap_or("").trim();
        let version = match first {
            MAGIC_V1 => 1,
            MAGIC_V2 => 2,
            other if other.starts_with("photon-zo-checkpoint ") => {
                return Err(parse_err(
                    1,
                    format!("unsupported checkpoint version {other:?}"),
                ))
            }
            other => return Err(parse_err(1, format!("bad magic {other:?}"))),
        };
        let body = if version == 2 { verify_checksum(s)? } else { s };

        let mut cur = Cursor::new(body);
        let _ = cur.next("magic header")?; // validated above

        let (arch_line, arch_header) = cur.next("arch header")?;
        let n_specs: usize = arch_header
            .strip_prefix("arch ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| parse_err(arch_line, "expected `arch <count>`".into()))?;
        let mut specs = Vec::with_capacity(n_specs);
        for _ in 0..n_specs {
            let (line, l) = cur.next("module spec")?;
            let parts: Vec<&str> = l.split_whitespace().collect();
            let spec = match parts.as_slice() {
                ["clements", dim, layers] => {
                    let dim = dim.parse().map_err(|_| parse_err(line, "bad dim".into()))?;
                    let layers = layers
                        .parse()
                        .map_err(|_| parse_err(line, "bad layers".into()))?;
                    ModuleSpec::Clements { dim, layers }
                }
                ["reck", dim] => ModuleSpec::Reck {
                    dim: dim.parse().map_err(|_| parse_err(line, "bad dim".into()))?,
                },
                ["phasediag", dim] => ModuleSpec::PhaseDiag {
                    dim: dim.parse().map_err(|_| parse_err(line, "bad dim".into()))?,
                },
                ["modrelu", dim] => ModuleSpec::ModRelu {
                    dim: dim.parse().map_err(|_| parse_err(line, "bad dim".into()))?,
                },
                ["electrooptic", dim, alpha, gain] => ModuleSpec::ElectroOptic {
                    dim: dim.parse().map_err(|_| parse_err(line, "bad dim".into()))?,
                    alpha: alpha
                        .parse()
                        .map_err(|_| parse_err(line, "bad alpha".into()))?,
                    gain: gain
                        .parse()
                        .map_err(|_| parse_err(line, "bad gain".into()))?,
                },
                _ => return Err(parse_err(line, format!("unknown module spec {l:?}"))),
            };
            specs.push(spec);
        }
        let architecture = Architecture::new(specs)
            .map_err(|e| parse_err(arch_line, format!("invalid architecture: {e}")))?;

        let (theta_line, theta_header) = cur.next("theta header")?;
        let n_theta: usize = theta_header
            .strip_prefix("theta ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| parse_err(theta_line, "expected `theta <count>`".into()))?;
        let mut theta = Vec::with_capacity(n_theta);
        for _ in 0..n_theta {
            let (line, l) = cur.next("theta value")?;
            theta.push(
                l.parse::<f64>()
                    .map_err(|_| parse_err(line, format!("bad float {l:?}")))?,
            );
        }
        let theta = RVector::from_vec(theta);
        if theta.len() != architecture.param_count() {
            return Err(parse_err(
                theta_line,
                format!(
                    "theta has {} values but architecture needs {}",
                    theta.len(),
                    architecture.param_count()
                ),
            ));
        }

        let (err_line, err_header) = cur.next("errors header")?;
        let errors = if err_header == "errors none" {
            None
        } else {
            let rest = err_header
                .strip_prefix("errors ")
                .ok_or_else(|| parse_err(err_line, "expected `errors …`".into()))?;
            let mut it = rest.split_whitespace();
            let n_bs: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(err_line, "bad beam-splitter count".into()))?;
            let n_ps: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(err_line, "bad phase-shifter count".into()))?;
            let total = n_bs + 2 * n_ps;
            let mut flat = Vec::with_capacity(total);
            for _ in 0..total {
                let (line, l) = cur.next("error value")?;
                flat.push(
                    l.parse::<f64>()
                        .map_err(|_| parse_err(line, format!("bad float {l:?}")))?,
                );
            }
            let expected = architecture.error_slots();
            if (n_bs, n_ps) != expected {
                return Err(parse_err(
                    err_line,
                    format!(
                        "error slots {:?} do not match architecture {expected:?}",
                        (n_bs, n_ps)
                    ),
                ));
            }
            Some(
                ErrorVector::from_flat(n_bs, n_ps, &flat)
                    .map_err(|e| parse_err(err_line, format!("invalid error vector: {e}")))?,
            )
        };

        // Strict tail: anything after the errors section (e.g. a duplicated
        // section pasted onto the file) is an error, not silently ignored.
        if let Some((line, l)) = cur.next_nonempty() {
            return Err(parse_err(
                line,
                format!("unexpected trailing line {l:?} (duplicated section?)"),
            ));
        }

        Ok(Checkpoint {
            architecture,
            theta,
            errors,
        })
    }
}

/// Sequential 1-based-line cursor over a checkpoint body.
struct Cursor<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    total: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            lines: s.lines().enumerate(),
            total: s.lines().count(),
        }
    }

    /// Next line as `(1-based number, trimmed content)`. EOF reports the
    /// line number *past the end* (where the expected content is missing),
    /// never the sentinel 0.
    fn next(&mut self, expect: &str) -> Result<(usize, String), CheckpointError> {
        self.lines
            .next()
            .map(|(i, l)| (i + 1, l.trim().to_string()))
            .ok_or_else(|| CheckpointError::Parse {
                line: self.total + 1,
                message: format!("unexpected end of file, expected {expect}"),
            })
    }

    /// The next non-empty line, if any remain.
    fn next_nonempty(&mut self) -> Option<(usize, String)> {
        for (i, l) in self.lines.by_ref() {
            let t = l.trim();
            if !t.is_empty() {
                return Some((i + 1, t.to_string()));
            }
        }
        None
    }
}

/// Validates a v2 checkpoint's trailing checksum line and returns the body
/// it covers.
fn verify_checksum(s: &str) -> Result<&str, CheckpointError> {
    let mut start = 0usize;
    let mut no = 0usize;
    let mut last: Option<(usize, usize, &str)> = None; // (line, byte start, content)
    for line in s.split_inclusive('\n') {
        no += 1;
        let content = line.trim();
        if !content.is_empty() {
            last = Some((no, start, content));
        }
        start += line.len();
    }
    let (line, byte_start, content) = last.expect("caller matched a non-empty magic line");
    let hex = content
        .strip_prefix("checksum ")
        .ok_or_else(|| CheckpointError::Parse {
            line,
            message: "missing trailing checksum line".into(),
        })?;
    let expected = u32::from_str_radix(hex.trim(), 16).map_err(|_| CheckpointError::Parse {
        line,
        message: format!("bad checksum value {hex:?}"),
    })?;
    let computed = crc32(&s.as_bytes()[..byte_start]);
    if computed != expected {
        return Err(CheckpointError::Parse {
            line,
            message: format!(
                "checksum mismatch: file says {expected:08x}, computed {computed:08x}"
            ),
        });
    }
    Ok(&s[..byte_start])
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_photonics::ErrorModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_checkpoint(with_errors: bool) -> Checkpoint {
        let mut rng = StdRng::seed_from_u64(5);
        let arch = Architecture::two_mesh_classifier(4, 2).unwrap();
        let theta = arch.build_ideal().init_params(&mut rng);
        let errors = with_errors.then(|| {
            let (n_bs, n_ps) = arch.error_slots();
            ErrorVector::sample(n_bs, n_ps, &ErrorModel::with_beta(1.0), &mut rng)
        });
        Checkpoint::new(arch, theta, errors)
    }

    #[test]
    fn text_roundtrip_without_errors() {
        let ckpt = sample_checkpoint(false);
        let back: Checkpoint = ckpt.to_string().parse().unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn text_roundtrip_with_errors_is_exact() {
        let ckpt = sample_checkpoint(true);
        let back: Checkpoint = ckpt.to_string().parse().unwrap();
        // Bit-exact floats via the debug-format round trip.
        assert_eq!(back, ckpt);
    }

    #[test]
    fn file_roundtrip() {
        let ckpt = sample_checkpoint(true);
        let dir = std::env::temp_dir().join("photon_zo_ckpt_test");
        let path = dir.join("nested/run1.ckpt");
        ckpt.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, ckpt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_atomic_and_overwrites() {
        let ckpt = sample_checkpoint(true);
        let dir = std::env::temp_dir().join("photon_zo_ckpt_atomic_test");
        let path = dir.join("run.ckpt");
        // Overwriting an older (different) checkpoint leaves the new one.
        sample_checkpoint(false).save(&path).unwrap();
        ckpt.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        // The temporary sibling never survives a successful save.
        let tmp = dir.join("run.ckpt.tmp");
        assert!(!tmp.exists(), "temp file must be renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_to_unwritable_path_is_typed_io_error_not_panic() {
        let ckpt = sample_checkpoint(false);
        let dir = std::env::temp_dir().join("photon_zo_ckpt_unwritable_test");
        std::fs::create_dir_all(&dir).unwrap();
        // The would-be parent directory is a regular file: both the
        // create_dir_all and the tmp+rename must fail with a typed error.
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, "i am a file").unwrap();
        let err = ckpt.save(&blocker.join("run.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
        // No stray temp file may be left behind.
        assert!(!dir.join("blocker/run.ckpt.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eo_activation_roundtrips() {
        let arch = Architecture::two_mesh_eo_classifier(4, 2, 0.125, 1.75).unwrap();
        let theta = RVector::zeros(arch.param_count());
        let ckpt = Checkpoint::new(arch, theta, None);
        let back: Checkpoint = ckpt.to_string().parse().unwrap();
        assert_eq!(back, ckpt);
        assert!(ckpt.to_string().contains("electrooptic 4 0.125 1.75"));
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/photon.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = "not a checkpoint".parse::<Checkpoint>().unwrap_err();
        assert!(matches!(err, CheckpointError::Parse { line: 1, .. }));
    }

    #[test]
    fn truncated_theta_rejected() {
        let ckpt = sample_checkpoint(false);
        let text = ckpt.to_string();
        let truncated: String = text.lines().take(8).collect::<Vec<_>>().join("\n");
        assert!(truncated.parse::<Checkpoint>().is_err());
    }

    #[test]
    fn wrong_theta_count_rejected_with_real_line_number() {
        let mut text = String::from(MAGIC_V1);
        text.push_str("\narch 1\nphasediag 3\ntheta 2\n0.0\n0.0\nerrors none\n");
        let err = text.parse::<Checkpoint>().unwrap_err();
        assert!(err.to_string().contains("architecture needs"));
        // Regression: the count mismatch is anchored to the `theta` header
        // (line 4), not the old line-0 sentinel.
        assert!(
            matches!(err, CheckpointError::Parse { line: 4, .. }),
            "{err}"
        );
    }

    #[test]
    fn v1_files_without_checksum_still_parse() {
        let ckpt = sample_checkpoint(true);
        let v2 = ckpt.to_string();
        // Reconstruct what the old writer produced: v1 magic, no checksum.
        let v1 = v2
            .replacen(MAGIC_V2, MAGIC_V1, 1)
            .lines()
            .filter(|l| !l.starts_with("checksum "))
            .collect::<Vec<_>>()
            .join("\n");
        let back: Checkpoint = v1.parse().unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn current_writer_emits_v2_with_valid_checksum() {
        let text = sample_checkpoint(true).to_string();
        assert!(text.starts_with(MAGIC_V2));
        let checksum_line = text.lines().last().unwrap();
        assert!(checksum_line.starts_with("checksum "), "{checksum_line}");
        assert!(text.parse::<Checkpoint>().is_ok());
    }

    #[test]
    fn flipped_checksum_rejected() {
        let text = sample_checkpoint(false).to_string();
        let lines: Vec<&str> = text.lines().collect();
        let last = lines.len();
        // Flip one hex digit of the stored checksum.
        let tampered = text.replace(
            lines[last - 1],
            &format!(
                "checksum {:08x}",
                u32::from_str_radix(lines[last - 1].strip_prefix("checksum ").unwrap(), 16)
                    .unwrap()
                    ^ 1
            ),
        );
        let err = tampered.parse::<Checkpoint>().unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        assert!(matches!(err, CheckpointError::Parse { line, .. } if line == last));
    }

    #[test]
    fn corrupted_body_fails_checksum_before_section_parse() {
        let text = sample_checkpoint(false).to_string();
        // Flip a digit inside a theta value: the checksum catches it even
        // though the line still parses as a float.
        let corrupted = text.replacen("0.", "1.", 1);
        assert_ne!(corrupted, text);
        let err = corrupted.parse::<Checkpoint>().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn unknown_version_rejected() {
        let err = "photon-zo-checkpoint v9\narch 0\n"
            .parse::<Checkpoint>()
            .unwrap_err();
        assert!(err.to_string().contains("unsupported checkpoint version"));
        assert!(matches!(err, CheckpointError::Parse { line: 1, .. }));
    }

    #[test]
    fn trailing_duplicated_section_rejected() {
        let ckpt = sample_checkpoint(false);
        let body = ckpt.body_text();
        // Duplicate the errors section after the real one (v1 framing so no
        // checksum shields the parser from seeing it).
        let mut v1 = body.replacen(MAGIC_V2, MAGIC_V1, 1);
        v1.push_str("errors none\n");
        let err = v1.parse::<Checkpoint>().unwrap_err();
        assert!(
            err.to_string().contains("unexpected trailing line"),
            "{err}"
        );
        let expected_line = v1.lines().count();
        assert!(matches!(err, CheckpointError::Parse { line, .. } if line == expected_line));
    }

    #[test]
    fn truncation_reports_line_past_end() {
        let mut text = String::from(MAGIC_V1);
        text.push_str("\narch 1\nphasediag 3\ntheta 3\n0.0\n");
        let err = text.parse::<Checkpoint>().unwrap_err();
        // 5 lines present; the missing theta value is "at" line 6.
        assert!(
            matches!(err, CheckpointError::Parse { line: 6, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("unexpected end of file"));
    }

    #[test]
    fn rebuilding_network_from_checkpoint_matches() {
        // The intended workflow: restore a calibrated model + theta and get
        // identical forward behavior.
        let ckpt = sample_checkpoint(true);
        let back: Checkpoint = ckpt.to_string().parse().unwrap();
        let net_a = ckpt
            .architecture
            .build_with_errors(ckpt.errors.as_ref().unwrap())
            .unwrap();
        let net_b = back
            .architecture
            .build_with_errors(back.errors.as_ref().unwrap())
            .unwrap();
        let x = photon_linalg::CVector::basis(4, 1);
        let ya = net_a.forward(&x, &ckpt.theta);
        let yb = net_b.forward(&x, &back.theta);
        assert!((&ya - &yb).max_abs() == 0.0);
    }

    #[test]
    #[should_panic(expected = "theta length")]
    fn mismatched_theta_panics() {
        let arch = Architecture::single_mesh(4, 2).unwrap();
        let _ = Checkpoint::new(arch, RVector::zeros(1), None);
    }
}
