//! Plain-text tables and CSV series — the output format of the experiment
//! binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use photon_trace::{LedgerCounts, TraceEvent};

use crate::trainer::{RecoveryEvent, TrainOutcome};

/// A fixed-width plain-text table builder.
///
/// # Examples
///
/// ```
/// use photon_core::TextTable;
///
/// let mut t = TextTable::new(&["method", "accuracy"]);
/// t.row(&["ZO-LCNG", "94.7%"]);
/// let s = t.render();
/// assert!(s.contains("method"));
/// assert!(s.contains("ZO-LCNG"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty; extra cells are kept).
    pub fn row(&mut self, cells: &[&str]) {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}  ");
            }
            let _ = writeln!(out);
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// A CSV series writer for figure data (one header row, then records).
///
/// Values are written with full precision; strings containing commas or
/// quotes are quoted.
#[derive(Debug, Clone)]
pub struct CsvWriter {
    headers: Vec<String>,
    records: Vec<Vec<String>>,
}

impl CsvWriter {
    /// Creates a writer with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        CsvWriter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            records: Vec::new(),
        }
    }

    /// Appends a record of raw string cells.
    pub fn record(&mut self, cells: &[&str]) {
        self.records
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a record of numeric cells.
    pub fn record_values(&mut self, cells: &[f64]) {
        self.records
            .push(cells.iter().map(|v| format!("{v}")).collect());
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no records were added.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn escape(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }

    /// Serializes to CSV text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let write_line = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| Self::escape(c)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        };
        write_line(&mut out, &self.headers);
        for rec in &self.records {
            write_line(&mut out, rec);
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.render())
    }
}

/// Renders a numeric series as a Unicode sparkline (`▁▂▃▄▅▆▇█`), for
/// at-a-glance convergence curves in terminal output.
///
/// Returns an empty string for an empty series; a constant series renders
/// at mid height.
///
/// # Examples
///
/// ```
/// use photon_core::sparkline;
///
/// let s = sparkline(&[3.0, 2.0, 1.0, 0.5, 0.2]);
/// assert_eq!(s.chars().count(), 5);
/// assert!(s.starts_with('█'));
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return "·".repeat(values.len());
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '·'
            } else if span <= 0.0 {
                BARS[4]
            } else {
                let t = ((v - min) / span * 7.0).round() as usize;
                BARS[t.min(7)]
            }
        })
        .collect()
}

/// Renders the recovery actions of a training run as a plain-text block:
/// an aggregate summary line followed by one line per structured event.
///
/// Returns `"no recovery actions"` for a quiet run, so callers can embed
/// the result unconditionally.
pub fn recovery_report(outcome: &TrainOutcome) -> String {
    let r = outcome.recovery;
    if r.is_quiet() && outcome.recovery_events.is_empty() {
        return "no recovery actions".to_string();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recovery summary [{}]: {} retries, {} rejected probes, {} rollbacks, {} recalibrations",
        outcome.method, r.retries, r.rejected_probes, r.rollbacks, r.recalibrations
    );
    for event in &outcome.recovery_events {
        match event {
            RecoveryEvent::Rollback {
                epoch,
                iteration,
                loss,
                threshold,
                new_lr,
            } => {
                let _ = writeln!(
                    out,
                    "  rollback   epoch {epoch:>3} iter {iteration:>5}: loss {loss:.4e} \
                     > threshold {threshold:.4e}, lr -> {new_lr:.3e}"
                );
            }
            RecoveryEvent::Recalibration {
                epoch,
                fidelity_before,
                fidelity_after,
                queries,
                adopted,
            } => {
                let verdict = if *adopted { "adopted" } else { "rejected" };
                let _ = writeln!(
                    out,
                    "  recalibrate epoch {epoch:>3}: fidelity {fidelity_before:.4} -> \
                     {fidelity_after:.4} ({queries} queries, {verdict})"
                );
            }
        }
    }
    out
}

/// Downsamples a series to at most `max_points` by striding, always keeping
/// the final point — used to fit long training histories into a sparkline.
pub fn downsample(values: &[f64], max_points: usize) -> Vec<f64> {
    assert!(max_points > 0, "need at least one point");
    if values.len() <= max_points {
        return values.to_vec();
    }
    let stride = values.len().div_ceil(max_points);
    let mut out: Vec<f64> = values.iter().copied().step_by(stride).collect();
    if let Some(&last) = values.last() {
        if out.last() != Some(&last) {
            out.push(last);
        }
    }
    out
}

/// Renders a recorded trace (e.g. from a
/// [`photon_trace::MemorySink`]) as a plain-text block: run header,
/// per-epoch progress lines, the aggregated query ledger, and the
/// cache/pool/reconciliation footers.
///
/// Returns `"no trace events"` for an empty slice, so callers can embed the
/// result unconditionally.
#[must_use]
pub fn trace_summary(events: &[TraceEvent]) -> String {
    if events.is_empty() {
        return "no trace events".to_string();
    }
    let mut out = String::new();
    let mut ledger = LedgerCounts::new();
    let mut epochs = 0u64;
    let mut epoch_losses: Vec<f64> = Vec::new();
    for event in events {
        match event {
            TraceEvent::RunStart {
                method,
                epochs,
                batch_size,
                probes,
                kernel,
            } => {
                let _ = writeln!(
                    out,
                    "run [{method}]: {epochs} epochs, batch {batch_size}, Q={probes}, \
                     kernel {kernel}"
                );
            }
            TraceEvent::EpochSpan {
                epoch,
                train_loss,
                test_accuracy,
                learning_rate,
                wall_secs,
                training_queries,
                ..
            } => {
                epochs = epochs.max(*epoch);
                epoch_losses.push(*train_loss);
                let acc = match test_accuracy {
                    Some(a) => format!("{:.2}%", a * 100.0),
                    None => "--".to_string(),
                };
                let _ = writeln!(
                    out,
                    "  epoch {epoch:>3}: loss {train_loss:.4e}  acc {acc:>7}  \
                     lr {learning_rate:.3e}  queries {training_queries:>8}  \
                     t {wall_secs:.2}s"
                );
            }
            TraceEvent::QueryLedger {
                category, queries, ..
            } => ledger.add(*category, *queries),
            TraceEvent::Calibration {
                queries,
                initial_cost,
                fit_cost,
                iterations,
            } => {
                let _ = writeln!(
                    out,
                    "  calibration: cost {initial_cost:.4e} -> {fit_cost:.4e} \
                     in {iterations} iters ({queries} queries)"
                );
            }
            TraceEvent::Rollback {
                epoch,
                iteration,
                loss,
                new_lr,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "  rollback    epoch {epoch:>3} iter {iteration:>5}: \
                     loss {loss:.4e}, lr -> {new_lr:.3e}"
                );
            }
            TraceEvent::Recalibration {
                epoch,
                fidelity_before,
                fidelity_after,
                adopted,
                ..
            } => {
                let verdict = if *adopted { "adopted" } else { "rejected" };
                let _ = writeln!(
                    out,
                    "  recalibrate epoch {epoch:>3}: fidelity \
                     {fidelity_before:.4} -> {fidelity_after:.4} ({verdict})"
                );
            }
            TraceEvent::FaultStats {
                step,
                dropped,
                spiked,
                bursts,
            } => {
                let _ = writeln!(
                    out,
                    "  faults      step {step:>5}: {dropped} dropped, \
                     {spiked} spiked, {bursts} bursts"
                );
            }
            TraceEvent::CacheStats {
                hits,
                misses,
                invalidations,
                incremental,
                forced_recompiles,
            } => {
                let _ = writeln!(
                    out,
                    "cache: {hits} hits, {misses} full compiles, {incremental} incremental, \
                     {forced_recompiles} forced, {invalidations} invalidations"
                );
            }
            TraceEvent::PoolStats {
                threads,
                map_calls,
                items,
                peak_worker_share_milli,
            } => {
                let _ = writeln!(
                    out,
                    "pool: {threads} threads, {map_calls} calls, {items} items, \
                     peak worker share {:.1}%",
                    *peak_worker_share_milli as f64 / 10.0
                );
            }
            TraceEvent::JournalFlush {
                epoch,
                records,
                bytes,
            } => {
                let _ = writeln!(
                    out,
                    "  journal     epoch {epoch:>3}: record {records} flushed ({bytes} bytes)"
                );
            }
            TraceEvent::Resume {
                epoch,
                records_replayed,
                truncated_bytes,
            } => {
                let _ = writeln!(
                    out,
                    "resume: epoch {epoch} restored from {records_replayed} records \
                     ({truncated_bytes} torn bytes truncated)"
                );
            }
            TraceEvent::RunEnd {
                training_queries,
                eval_queries,
                run_queries,
                chip_query_count,
                wall_secs,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "end: {training_queries} training + {eval_queries} eval = \
                     {run_queries} run queries (chip total {chip_query_count}) \
                     in {wall_secs:.2}s"
                );
            }
            TraceEvent::ChipHealth {
                worker,
                from,
                to,
                reason,
            } => {
                let _ = writeln!(out, "  chip        {worker}: {from} -> {to} ({reason})");
            }
            TraceEvent::JobState {
                job,
                tenant,
                state,
                worker,
                detail,
            } => {
                let place = if worker.is_empty() {
                    String::new()
                } else {
                    format!(" on {worker}")
                };
                let note = if detail.is_empty() {
                    String::new()
                } else {
                    format!(" ({detail})")
                };
                let _ = writeln!(out, "  job         {job} [{tenant}]: {state}{place}{note}");
            }
            TraceEvent::TenantLedger {
                tenant,
                queries,
                jobs_completed,
                jobs_rejected,
            } => {
                let _ = writeln!(
                    out,
                    "tenant {tenant}: {queries} chip queries, \
                     {jobs_completed} completed, {jobs_rejected} rejected"
                );
            }
            TraceEvent::CanaryVerdict {
                cycle,
                samples,
                baseline_loss,
                shadow_loss,
                p_value,
                promote,
            } => {
                let verdict = if *promote { "promote" } else { "reject" };
                let _ = writeln!(
                    out,
                    "  canary      cycle {cycle:>3}: loss {baseline_loss:.4e} vs \
                     {shadow_loss:.4e} over {samples}/arm, p={p_value:.4} -> {verdict}"
                );
            }
            TraceEvent::Promotion {
                cycle,
                step,
                shadow_epochs,
                shadow_loss,
            } => {
                let _ = writeln!(
                    out,
                    "  promote     cycle {cycle:>3} step {step:>5}: shadow theta \
                     ({shadow_epochs} epochs, loss {shadow_loss:.4e}) pinned"
                );
            }
            TraceEvent::ShadowRollback {
                cycle,
                step,
                reason,
            } => {
                let _ = writeln!(
                    out,
                    "  shadow-drop cycle {cycle:>3} step {step:>5}: {reason}"
                );
            }
            TraceEvent::ServingStats {
                tenant,
                arrivals,
                completed,
                shed,
                p50_ns,
                p99_ns,
                p999_ns,
                throughput_rps,
                peak_queue_depth,
                mean_batch,
            } => {
                let _ = writeln!(
                    out,
                    "serving {tenant}: {completed}/{arrivals} served ({shed} shed), \
                     {throughput_rps:.0} rps, p50/p99/p999 \
                     {:.1}/{:.1}/{:.1} us, peak queue {peak_queue_depth}, \
                     mean batch {mean_batch:.2}",
                    p50_ns / 1e3,
                    p99_ns / 1e3,
                    p999_ns / 1e3,
                );
            }
        }
    }
    if epoch_losses.len() >= 4 {
        // Loss quantiles give long traced runs a one-line shape summary
        // (median vs p90 separating steady progress from spiky rollbacks).
        let q = crate::stats::percentiles(&epoch_losses, &[0.5, 0.9]);
        let _ = writeln!(
            out,
            "epoch loss quantiles: p50 {:.4e}, p90 {:.4e} over {} epochs",
            q[0],
            q[1],
            epoch_losses.len()
        );
    }
    if ledger.total() > 0 {
        let _ = writeln!(out, "query ledger ({} total):", ledger.total());
        for (category, queries) in ledger.iter() {
            if queries > 0 {
                let _ = writeln!(out, "  {:<16} {queries:>10}", category.label());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_summary_renders_ledger_and_reconciliation() {
        use photon_trace::QueryCategory;
        assert_eq!(trace_summary(&[]), "no trace events");
        let events = vec![
            TraceEvent::RunStart {
                method: "ZO-LCNG(calib)".to_string(),
                epochs: 1,
                batch_size: 8,
                probes: 20,
                kernel: "scalar".to_string(),
            },
            TraceEvent::QueryLedger {
                epoch: 1,
                category: QueryCategory::Probe,
                queries: 40,
            },
            TraceEvent::QueryLedger {
                epoch: 1,
                category: QueryCategory::Eval,
                queries: 10,
            },
            TraceEvent::EpochSpan {
                epoch: 1,
                train_loss: 0.5,
                test_accuracy: Some(0.9),
                test_loss: Some(0.4),
                learning_rate: 0.01,
                wall_secs: 0.1,
                training_queries: 40,
            },
            TraceEvent::RunEnd {
                method: "ZO-LCNG(calib)".to_string(),
                training_queries: 40,
                eval_queries: 10,
                run_queries: 50,
                chip_query_count: 50,
                wall_secs: 0.1,
            },
        ];
        let s = trace_summary(&events);
        assert!(s.contains("run [ZO-LCNG(calib)]"));
        assert!(s.contains("kernel scalar"));
        assert!(s.contains("query ledger (50 total)"));
        assert!(s.contains("probe"));
        assert!(s.contains("90.00%"));
        assert!(s.contains("40 training + 10 eval = 50 run queries"));
    }

    #[test]
    fn trace_summary_renders_serving_stats() {
        let events = vec![TraceEvent::ServingStats {
            tenant: "alice".to_string(),
            arrivals: 1000,
            completed: 990,
            shed: 10,
            p50_ns: 12_500.0,
            p99_ns: 96_000.0,
            p999_ns: 250_000.0,
            throughput_rps: 131_000.0,
            peak_queue_depth: 37,
            mean_batch: 7.5,
        }];
        let s = trace_summary(&events);
        assert!(s.contains("serving alice: 990/1000 served (10 shed)"), "{s}");
        assert!(s.contains("131000 rps"), "{s}");
        assert!(s.contains("12.5/96.0/250.0 us"), "{s}");
        assert!(s.contains("peak queue 37"), "{s}");
        assert!(s.contains("mean batch 7.50"), "{s}");
    }

    #[test]
    fn trace_summary_renders_online_recal_events() {
        let events = vec![
            TraceEvent::CanaryVerdict {
                cycle: 1,
                samples: 8,
                baseline_loss: 0.8,
                shadow_loss: 0.2,
                p_value: 0.0125,
                promote: true,
            },
            TraceEvent::Promotion {
                cycle: 1,
                step: 320,
                shadow_epochs: 3,
                shadow_loss: 0.2,
            },
            TraceEvent::ShadowRollback {
                cycle: 2,
                step: 640,
                reason: "canary_not_better".to_string(),
            },
        ];
        let s = trace_summary(&events);
        assert!(s.contains("canary      cycle   1"), "{s}");
        assert!(s.contains("p=0.0125 -> promote"), "{s}");
        assert!(s.contains("promote     cycle   1 step   320"), "{s}");
        assert!(s.contains("3 epochs"), "{s}");
        assert!(s.contains("shadow-drop cycle   2 step   640: canary_not_better"), "{s}");
    }

    #[test]
    fn trace_summary_loss_quantile_footer() {
        let events: Vec<TraceEvent> = (1..=10)
            .map(|epoch| TraceEvent::EpochSpan {
                epoch,
                train_loss: epoch as f64 / 10.0,
                test_accuracy: None,
                test_loss: None,
                learning_rate: 0.01,
                wall_secs: 0.1,
                training_queries: 40,
            })
            .collect();
        let s = trace_summary(&events);
        assert!(s.contains("epoch loss quantiles"), "{s}");
        // p50 of 0.1..=1.0 is 0.55 via linear interpolation.
        assert!(s.contains("p50 5.5000e-1"), "{s}");
        assert!(s.contains("over 10 epochs"), "{s}");
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[1.0, 1.0, 1.0]);
        assert_eq!(flat.chars().count(), 3);
        assert!(flat.chars().all(|c| c == '▅'));
        let s = sparkline(&[0.0, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
        // NaN renders as a placeholder, finite neighbours still scale.
        let with_nan = sparkline(&[0.0, f64::NAN, 1.0]);
        assert!(with_nan.contains('·'));
    }

    #[test]
    fn downsample_preserves_last() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&v, 10);
        assert!(d.len() <= 11);
        assert_eq!(*d.last().unwrap(), 99.0);
        // Short series pass through unchanged.
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn downsample_zero_points_panics() {
        let _ = downsample(&[1.0], 0);
    }

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        t.row_owned(vec!["y".into(), "2".into(), "extra".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(&["col"]);
        assert!(t.is_empty());
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let mut w = CsvWriter::new(&["epoch", "loss"]);
        w.record_values(&[1.0, 0.5]);
        w.record(&["2", "0.25"]);
        let s = w.render();
        assert_eq!(s, "epoch,loss\n1,0.5\n2,0.25\n");
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn csv_escaping() {
        let mut w = CsvWriter::new(&["name"]);
        w.record(&["has,comma"]);
        w.record(&["has\"quote"]);
        let s = w.render();
        assert!(s.contains("\"has,comma\""));
        assert!(s.contains("\"has\"\"quote\""));
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("photon_zo_csv_test");
        let path = dir.join("nested/out.csv");
        let mut w = CsvWriter::new(&["x"]);
        w.record_values(&[42.0]);
        w.write_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("42"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
