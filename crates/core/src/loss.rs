//! Losses over ONN outputs: the optical power-readout classification head
//! and an MSE regression head.

use photon_linalg::{CVector, RVector};

/// The classification head of the evaluation pipeline: extract the central
/// `num_classes` output ports, read their optical powers, scale by the
/// detector gain, and apply softmax cross-entropy.
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CVector};
/// use photon_core::ClassificationHead;
///
/// let head = ClassificationHead::new(16, 10, 10.0)?;
/// // All power in the port of class 3 → class 3 wins.
/// let mut y = CVector::zeros(16);
/// y[head.port_of_class(3)] = C64::ONE;
/// assert_eq!(head.predict(&y), 3);
/// assert!(head.loss(&y, 3) < head.loss(&y, 5));
/// # Ok::<(), photon_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassificationHead {
    output_dim: usize,
    num_classes: usize,
    offset: usize,
    gain: f64,
}

/// Errors raised by `photon-core` configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The network output has fewer ports than there are classes.
    HeadTooWide {
        /// Output ports available.
        output_dim: usize,
        /// Classes requested.
        num_classes: usize,
    },
    /// An invalid configuration value.
    InvalidConfig(String),
    /// A run-journal operation (create / append / replay) failed.
    Journal(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::HeadTooWide {
                output_dim,
                num_classes,
            } => write!(
                f,
                "cannot read {num_classes} classes from {output_dim} output ports"
            ),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Journal(msg) => write!(f, "run journal: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl ClassificationHead {
    /// Creates a head reading `num_classes` central ports of an
    /// `output_dim`-port circuit with the given detector gain.
    ///
    /// # Errors
    ///
    /// [`CoreError::HeadTooWide`] when `num_classes > output_dim`;
    /// [`CoreError::InvalidConfig`] for a non-positive gain or zero classes.
    pub fn new(output_dim: usize, num_classes: usize, gain: f64) -> Result<Self, CoreError> {
        if num_classes == 0 {
            return Err(CoreError::InvalidConfig("need at least one class".into()));
        }
        if num_classes > output_dim {
            return Err(CoreError::HeadTooWide {
                output_dim,
                num_classes,
            });
        }
        if gain <= 0.0 {
            return Err(CoreError::InvalidConfig(
                "detector gain must be positive".into(),
            ));
        }
        Ok(ClassificationHead {
            output_dim,
            num_classes,
            offset: (output_dim - num_classes) / 2,
            gain,
        })
    }

    /// Number of classes read out.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The output port carrying class `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= num_classes`.
    pub fn port_of_class(&self, c: usize) -> usize {
        assert!(c < self.num_classes, "class out of range");
        self.offset + c
    }

    /// Scaled power logits of the central ports.
    ///
    /// # Panics
    ///
    /// Panics when `y.len() != output_dim`.
    pub fn logits(&self, y: &CVector) -> RVector {
        assert_eq!(y.len(), self.output_dim, "output dimension mismatch");
        RVector::from_fn(self.num_classes, |c| {
            self.gain * y[self.offset + c].norm_sqr()
        })
    }

    /// Softmax probabilities over classes.
    pub fn probabilities(&self, y: &CVector) -> RVector {
        softmax(&self.logits(y))
    }

    /// Predicted class (argmax logit).
    pub fn predict(&self, y: &CVector) -> usize {
        self.logits(y)
            .argmax()
            .expect("head has at least one class")
    }

    /// Cross-entropy loss of one sample.
    ///
    /// A non-finite network output (e.g. a dropped chip read) yields
    /// `f64::INFINITY` rather than NaN, so downstream guards — the robust
    /// estimators, the trainer's divergence check — see a value that
    /// compares and propagates predictably instead of poisoning the LCNG
    /// normal equations.
    ///
    /// # Panics
    ///
    /// Panics when `label >= num_classes`.
    pub fn loss(&self, y: &CVector, label: usize) -> f64 {
        assert!(label < self.num_classes, "label out of range");
        if !y.iter().all(|z| z.re.is_finite() && z.im.is_finite()) {
            return f64::INFINITY;
        }
        let p = self.probabilities(y);
        -(p[label].max(1e-300)).ln()
    }

    /// Loss plus the Wirtinger output cotangent
    /// `g = ∂ℓ/∂Re(y) + j·∂ℓ/∂Im(y)`, suitable for `Network::vjp`.
    ///
    /// # Panics
    ///
    /// Panics when `label >= num_classes`.
    pub fn loss_and_grad(&self, y: &CVector, label: usize) -> (f64, CVector) {
        assert!(label < self.num_classes, "label out of range");
        let p = self.probabilities(y);
        let loss = -(p[label].max(1e-300)).ln();
        let mut g = CVector::zeros(self.output_dim);
        for c in 0..self.num_classes {
            let dl_dlogit = p[c] - if c == label { 1.0 } else { 0.0 };
            // logit = gain·|y|² ⇒ ∂logit/∂Re(y) = 2·gain·Re(y), likewise Im.
            let m = self.offset + c;
            g[m] = y[m].scale(2.0 * self.gain * dl_dlogit);
        }
        (loss, g)
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &RVector) -> RVector {
    let max = logits.max();
    let exps = RVector::from_fn(logits.len(), |i| (logits[i] - max).exp());
    let sum = exps.sum();
    exps.scale(1.0 / sum)
}

/// Mean-squared-error regression head: `ℓ = ‖y − t‖²`.
///
/// # Examples
///
/// ```
/// use photon_linalg::{C64, CVector};
/// use photon_core::mse_loss_and_grad;
///
/// let y = CVector::from_vec(vec![C64::ONE]);
/// let t = CVector::from_vec(vec![C64::ZERO]);
/// let (loss, g) = mse_loss_and_grad(&y, &t);
/// assert!((loss - 1.0).abs() < 1e-12);
/// assert!((g[0] - C64::from_real(2.0)).abs() < 1e-12);
/// ```
pub fn mse_loss_and_grad(y: &CVector, target: &CVector) -> (f64, CVector) {
    assert_eq!(y.len(), target.len(), "target dimension mismatch");
    let diff = y - target;
    let loss = diff.norm_sqr();
    // ∂‖y−t‖²/∂Re(y_m) = 2·Re(y_m − t_m), likewise Im ⇒ g = 2·(y − t).
    let g = diff.scale_real(2.0);
    (loss, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_linalg::C64;

    fn head() -> ClassificationHead {
        ClassificationHead::new(16, 10, 10.0).unwrap()
    }

    #[test]
    fn central_ports_are_selected() {
        let h = head();
        assert_eq!(h.port_of_class(0), 3);
        assert_eq!(h.port_of_class(9), 12);
        let exact = ClassificationHead::new(10, 10, 1.0).unwrap();
        assert_eq!(exact.port_of_class(0), 0);
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            ClassificationHead::new(4, 10, 1.0),
            Err(CoreError::HeadTooWide { .. })
        ));
        assert!(ClassificationHead::new(10, 10, 0.0).is_err());
        assert!(ClassificationHead::new(10, 0, 1.0).is_err());
    }

    #[test]
    fn softmax_properties() {
        let s = softmax(&RVector::from_slice(&[1.0, 2.0, 3.0]));
        assert!((s.sum() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        // Stability with huge logits.
        let s2 = softmax(&RVector::from_slice(&[1e4, 1e4 + 1.0]));
        assert!(s2.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn loss_prefers_correct_class() {
        let h = head();
        let mut y = CVector::zeros(16);
        y[h.port_of_class(7)] = C64::from_polar(1.0, 0.3);
        assert_eq!(h.predict(&y), 7);
        assert!(h.loss(&y, 7) < h.loss(&y, 2));
        let p = h.probabilities(&y);
        assert!((p.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let h = head();
        let mut y = CVector::zeros(16);
        for c in 0..16 {
            y[c] = C64::new(0.1 * (c as f64 + 1.0), -0.05 * c as f64);
        }
        let label = 4;
        let (_, g) = h.loss_and_grad(&y, label);
        let eps = 1e-6;
        for m in 0..16 {
            for part in 0..2 {
                let mut yp = y.clone();
                let mut ym = y.clone();
                if part == 0 {
                    yp[m] = yp[m] + eps;
                    ym[m] = ym[m] - eps;
                } else {
                    yp[m] += C64::new(0.0, eps);
                    ym[m] -= C64::new(0.0, eps);
                }
                let fd = (h.loss(&yp, label) - h.loss(&ym, label)) / (2.0 * eps);
                let analytic = if part == 0 { g[m].re } else { g[m].im };
                assert!(
                    (fd - analytic).abs() < 1e-6,
                    "port {m} part {part}: fd {fd} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn mse_grad_matches_finite_difference() {
        let y = CVector::from_vec(vec![C64::new(0.5, -0.3), C64::new(-1.0, 0.2)]);
        let t = CVector::from_vec(vec![C64::new(0.1, 0.1), C64::new(0.0, 0.0)]);
        let (_, g) = mse_loss_and_grad(&y, &t);
        let eps = 1e-6;
        for m in 0..2 {
            let mut yp = y.clone();
            yp[m] = yp[m] + eps;
            let mut ym = y.clone();
            ym[m] = ym[m] - eps;
            let fd = (mse_loss_and_grad(&yp, &t).0 - mse_loss_and_grad(&ym, &t).0) / (2.0 * eps);
            assert!((fd - g[m].re).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let h = head();
        let _ = h.loss(&CVector::zeros(16), 10);
    }

    #[test]
    fn non_finite_output_yields_infinite_loss_not_nan() {
        let h = head();
        let mut y = CVector::zeros(16);
        y[3] = C64::new(f64::NAN, 0.0);
        assert_eq!(h.loss(&y, 0), f64::INFINITY);
        let mut y = CVector::zeros(16);
        y[7] = C64::new(0.0, f64::INFINITY);
        assert_eq!(h.loss(&y, 2), f64::INFINITY);
    }
}
