//! The crash-safe run journal: a write-ahead log of full training state.
//!
//! A training run spends its budget in chip queries; a crash that loses the
//! optimizer state throws that spend away. The journal makes stage-2
//! training durable: after every epoch the trainer appends one framed,
//! checksummed record carrying the complete [`RunState`] (theta, optimizer
//! internals, query ledger, recovery bookkeeping) plus that epoch's
//! [`EpochRecord`]. On startup, [`RunJournal::replay`] walks the log,
//! truncates any torn tail left by a kill mid-append, and returns the last
//! consistent epoch — from which [`Trainer::resume`](crate::Trainer::resume)
//! continues bitwise-identically to an uninterrupted run.
//!
//! # Record framing
//!
//! The file is plain text. Line 1 is the magic header. Every record is
//!
//! ```text
//! record <payload-bytes> <crc32-hex>\n
//! <payload…>
//! ```
//!
//! appended with a single `write_all` on an `O_APPEND` handle followed by
//! `sync_data`. The CRC covers the payload bytes only. Replay accepts the
//! longest prefix of intact records: a frame line that does not parse, a
//! payload shorter than its declared length, or a checksum mismatch all mark
//! the torn tail, which is truncated in place.
//!
//! # RNG discipline
//!
//! No generator state is ever serialized. Each epoch draws from a fresh
//! `StdRng` seeded by [`epoch_seed`]`(root_seed, epoch)` (and the warm start
//! from epoch 0), so the stream position is a pure function of
//! `(root_seed, epoch)` and resume re-derives it exactly.

use std::fmt;
use std::fs;
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};

use photon_linalg::{RMatrix, RVector};
use photon_opt::{AdamState, CmaEsState};
use photon_photonics::ErrorVector;
use photon_trace::{LedgerCounts, QueryCategory};

use crate::metrics::Evaluation;
use crate::trainer::{EpochRecord, Method, RecoveryEvent, RecoveryStats};

const JOURNAL_MAGIC: &str = "photon-zo-journal v1";

/// Computes the CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of
/// `bytes`. Shared by the journal record frames and the v2 checkpoint
/// format's trailing checksum line.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// SplitMix64: a tiny, high-quality mixing function used to derive
/// independent seeds from a root seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed for one stage-2 epoch from the run's root seed.
///
/// Epoch 0 is the warm start's stream; epochs `1..=E` are the fine-tune
/// epochs. Distinct `(root_seed, epoch)` pairs map to statistically
/// independent streams, and the derivation is pure, so a resumed run
/// re-creates each epoch's generator without ever serializing RNG state.
pub fn epoch_seed(root_seed: u64, epoch: usize) -> u64 {
    splitmix64(root_seed ^ splitmix64((epoch as u64).wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// Errors raised while writing or replaying a run journal.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// Filesystem failure.
    Io(io::Error),
    /// The journal (or one payload) is not valid. Only raised for damage
    /// that torn-tail truncation cannot repair, e.g. a bad magic header.
    Parse {
        /// What went wrong.
        message: String,
    },
    /// Another live writer holds the journal's advisory lock. A second
    /// appender must fail fast here rather than interleave frames into a
    /// torn WAL.
    Locked {
        /// The journal path (not the lockfile path).
        path: PathBuf,
        /// The holder's process id, when the lockfile recorded one.
        holder: Option<u32>,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o failed: {e}"),
            JournalError::Parse { message } => write!(f, "journal parse error: {message}"),
            JournalError::Locked { path, holder } => match holder {
                Some(pid) => write!(
                    f,
                    "journal {} is locked by another writer (pid {pid})",
                    path.display()
                ),
                None => write!(
                    f,
                    "journal {} is locked by another writer",
                    path.display()
                ),
            },
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Parse { .. } | JournalError::Locked { .. } => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

fn perr(message: impl Into<String>) -> JournalError {
    JournalError::Parse {
        message: message.into(),
    }
}

/// Advisory single-writer lock on a journal path.
///
/// A sibling `<journal>.lock` file is created with `O_EXCL` and records the
/// owning process id. A second writer on the same path — another
/// [`RunJournal::create`] or [`RunJournal::open_append`] while the first
/// handle is live — fails fast with [`JournalError::Locked`] instead of
/// interleaving appends into a torn WAL. A lock left behind by a SIGKILLed
/// process (the chaos gate does exactly this) is detected as stale — its
/// pid no longer exists — and reclaimed, so crash-resume needs no manual
/// cleanup. [`RunJournal::replay`] stays lock-free: it only read-repairs,
/// and resume acquires the writer lock immediately afterwards.
#[derive(Debug)]
struct JournalLock {
    path: PathBuf,
}

fn lock_path(journal_path: &Path) -> PathBuf {
    let mut os = journal_path.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

fn process_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        process_alive_under(Path::new("/proc"), pid)
    }
    #[cfg(not(target_os = "linux"))]
    {
        // No portable liveness probe: treat any recorded holder as live
        // (fail-safe; a genuinely stale lock then needs manual removal).
        true
    }
}

/// Procfs-based liveness probe, parameterized on the procfs root so the
/// no-`/proc` branch is unit-testable on any host.
///
/// When the procfs root itself is absent — minimal containers and chroots
/// routinely run without `/proc` mounted — there is no liveness signal at
/// all, and `join(pid).exists()` would report *every* pid dead. That way
/// lies misreclaiming a live writer's lock and interleaving two WALs, so
/// the absence of procfs degrades to "holder is live": the lock stays held
/// and a genuinely stale one needs manual removal, which is the safe
/// failure direction.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn process_alive_under(proc_root: &Path, pid: u32) -> bool {
    if !proc_root.is_dir() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

impl JournalLock {
    fn acquire(journal_path: &Path) -> Result<Self, JournalError> {
        let path = lock_path(journal_path);
        // Two passes: the first may reclaim one stale lock, the second must
        // then win `create_new` outright or report the (live) holder.
        for _ in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    let _ = f.sync_data();
                    return Ok(JournalLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if !process_alive(pid) => {
                            // Stale: the holder died without releasing.
                            // Reclaim and retry; two racers can both see
                            // staleness, but `create_new` admits only one.
                            let _ = fs::remove_file(&path);
                            continue;
                        }
                        _ => {
                            return Err(JournalError::Locked {
                                path: journal_path.to_path_buf(),
                                holder,
                            });
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(JournalError::Locked {
            path: journal_path.to_path_buf(),
            holder: None,
        })
    }
}

impl Drop for JournalLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// The run identity written as the journal's first record. Resume refuses a
/// journal whose header contradicts the caller's configuration: the
/// determinism contract only holds for the original `(method, root seed,
/// batch size, probe count)`.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// The stage-2 training method.
    pub method: Method,
    /// Root seed all per-epoch RNG streams derive from.
    pub root_seed: u64,
    /// Stage-2 epochs the run was started with (informational).
    pub epochs: usize,
    /// Mini-batch size (affects the per-epoch shuffle stream).
    pub batch_size: usize,
    /// Probe count per ZO estimate (affects the probe stream).
    pub q: usize,
}

/// The complete loop-carried state of stage-2 training at an epoch
/// boundary. One `RunState` plus the epoch's [`EpochRecord`] make up each
/// journal record; restoring it (plus re-deriving the next epoch's RNG)
/// resumes the run bitwise-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct RunState {
    /// Last completed stage-2 epoch (1-based).
    pub epoch: usize,
    /// Global optimizer-iteration counter (serial chip control points).
    pub iteration: usize,
    /// Rotation offset of coordinate-wise ZO probes.
    pub coord_offset: usize,
    /// Divergence-guard rollbacks consumed so far.
    pub rollbacks_used: usize,
    /// Divergence-guard EMA of the base loss.
    pub loss_ema: Option<f64>,
    /// Cumulative evaluation-side chip queries.
    pub eval_queries: u64,
    /// Cumulative per-category query ledger.
    pub ledger: LedgerCounts,
    /// Cumulative recovery-action totals.
    pub recovery: RecoveryStats,
    /// Current parameters.
    pub theta: RVector,
    /// Adam optimizer internals.
    pub adam: AdamState,
    /// CMA-ES internals, when the method is CMA.
    pub cma: Option<CmaEsState>,
    /// The divergence guard's last good `(θ, optimizer)` snapshot.
    pub rollback_snapshot: Option<RollbackSnapshot>,
    /// Error assignment of an *adopted* auto-recalibration, when one
    /// occurred. Resume rebuilds the replacement metric model from it.
    pub metric_errors: Option<ErrorVector>,
    /// Structured recovery events so far, in order.
    pub recovery_events: Vec<RecoveryEvent>,
}

/// The divergence guard's rollback target, serialized alongside
/// [`RunState`].
#[derive(Debug, Clone, PartialEq)]
pub struct RollbackSnapshot {
    /// Last good parameters.
    pub theta: RVector,
    /// Optimizer state at that point.
    pub adam: AdamState,
    /// CMA-ES state at that point, when the method is CMA.
    pub cma: Option<CmaEsState>,
}

/// One journal record: the full state at an epoch boundary plus that
/// epoch's bookkeeping line.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochEntry {
    /// Full loop-carried state after the epoch.
    pub state: RunState,
    /// The epoch's [`EpochRecord`] (what `TrainOutcome::history` collects).
    pub record: EpochRecord,
}

/// The result of replaying a journal from disk.
#[derive(Debug)]
pub struct Replay {
    /// The run identity record.
    pub header: JournalHeader,
    /// All intact epoch entries, in epoch order.
    pub entries: Vec<EpochEntry>,
    /// Bytes of torn tail that were truncated away (0 for a clean log).
    pub truncated_bytes: u64,
}

/// An append-only handle on a run journal.
#[derive(Debug)]
pub struct RunJournal {
    file: fs::File,
    path: PathBuf,
    records: u64,
    /// Held for the lifetime of the handle; releasing (via drop) lets the
    /// next writer — e.g. a resume on another farm worker — take over.
    _lock: JournalLock,
}

impl RunJournal {
    /// Creates (truncating any previous file) a new journal at `path` and
    /// writes the header record durably. Missing parent directories are
    /// created first.
    ///
    /// # Errors
    ///
    /// [`JournalError::Locked`] when another live writer holds the path;
    /// [`JournalError::Io`] on filesystem failures (unwritable parent,
    /// path is a directory, …) — typed, never a panic.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, JournalError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        // Lock before truncating: a second `create` racing a live run must
        // fail fast here, not blank the live WAL first.
        let lock = JournalLock::acquire(path)?;
        fs::write(path, format!("{JOURNAL_MAGIC}\n"))?;
        let file = fs::OpenOptions::new().append(true).open(path)?;
        let mut journal = RunJournal {
            file,
            path: path.to_path_buf(),
            records: 0,
            _lock: lock,
        };
        journal.append_payload(&header_payload(header))?;
        sync_parent_dir(path);
        Ok(journal)
    }

    /// Re-opens an existing journal for appending. Call
    /// [`RunJournal::replay`] first so the tail is known-consistent.
    ///
    /// # Errors
    ///
    /// [`JournalError::Locked`] when another live writer holds the path;
    /// otherwise propagates I/O failures.
    pub fn open_append(path: &Path) -> Result<Self, JournalError> {
        let lock = JournalLock::acquire(path)?;
        let file = fs::OpenOptions::new().append(true).open(path)?;
        Ok(RunJournal {
            file,
            path: path.to_path_buf(),
            records: 0,
            _lock: lock,
        })
    }

    /// Records appended through *this handle* (not the whole file).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one epoch entry: a single framed, checksummed, fsynced
    /// write, so a kill at any instant leaves at worst a torn tail that
    /// replay truncates. Returns the bytes written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append_epoch(&mut self, entry: &EpochEntry) -> Result<u64, JournalError> {
        self.append_payload(&entry_payload(entry))
    }

    fn append_payload(&mut self, payload: &str) -> Result<u64, JournalError> {
        let frame = format!(
            "record {} {:08x}\n{payload}",
            payload.len(),
            crc32(payload.as_bytes())
        );
        // One write_all on an O_APPEND handle: the kernel appends the chunk
        // at a single offset, so concurrent readers (and a crash) see either
        // nothing or a contiguous (possibly torn) chunk — never interleaving.
        self.file.write_all(frame.as_bytes())?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(frame.len() as u64)
    }

    /// Replays the journal at `path`: verifies the magic header, walks the
    /// framed records, and **truncates** any torn tail (incomplete frame,
    /// short payload, or checksum mismatch) in place so subsequent appends
    /// continue from the last consistent record.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failures; [`JournalError::Parse`]
    /// when the file is not a journal at all (bad magic) or an *intact*
    /// record fails validation (e.g. epochs out of order) — damage that
    /// truncation cannot repair.
    pub fn replay(path: &Path) -> Result<Replay, JournalError> {
        let mut file = fs::OpenOptions::new().read(true).write(true).open(path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;

        let magic_end = text
            .find('\n')
            .ok_or_else(|| perr("missing or torn magic header"))?;
        if &text[..magic_end] != JOURNAL_MAGIC {
            let got = &text[..magic_end.min(64)];
            if got.starts_with("photon-zo-journal ") {
                return Err(perr(format!("unsupported journal version {got:?}")));
            }
            return Err(perr(format!("bad journal magic {got:?}")));
        }

        let mut offset = magic_end + 1;
        let mut header: Option<JournalHeader> = None;
        let mut entries: Vec<EpochEntry> = Vec::new();
        let mut good_end = offset;
        while offset < text.len() {
            let Some((payload, next_offset)) = next_record(&text, offset) else {
                break; // torn tail: truncate from `good_end`
            };
            if header.is_none() {
                header = Some(parse_header_payload(payload)?);
            } else {
                let entry = parse_entry_payload(payload)?;
                if let Some(prev) = entries.last() {
                    if entry.state.epoch <= prev.state.epoch {
                        return Err(perr(format!(
                            "epochs out of order: {} after {}",
                            entry.state.epoch, prev.state.epoch
                        )));
                    }
                }
                entries.push(entry);
            }
            offset = next_offset;
            good_end = next_offset;
        }
        let truncated_bytes = (text.len() - good_end) as u64;
        if truncated_bytes > 0 {
            file.set_len(good_end as u64)?;
            file.seek(io::SeekFrom::End(0))?;
            file.sync_data()?;
        }
        let header = header.ok_or_else(|| perr("journal has no intact header record"))?;
        Ok(Replay {
            header,
            entries,
            truncated_bytes,
        })
    }
}

/// Fsyncs `path`'s parent directory so the file's creation itself survives
/// a crash. Best-effort: some filesystems refuse directory fsync.
pub(crate) fn sync_parent_dir(path: &Path) {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    if let Ok(dir) = fs::File::open(parent) {
        let _ = dir.sync_all();
    }
}

/// Parses one framed record starting at byte `offset`. Returns the payload
/// slice and the offset just past it, or `None` when the record is torn
/// (malformed frame line, short payload, or checksum mismatch).
fn next_record(text: &str, offset: usize) -> Option<(&str, usize)> {
    let rest = &text[offset..];
    let line_end = rest.find('\n')?;
    let frame = &rest[..line_end];
    let mut it = frame.split_whitespace();
    if it.next() != Some("record") {
        return None;
    }
    let len: usize = it.next()?.parse().ok()?;
    let crc: u32 = u32::from_str_radix(it.next()?, 16).ok()?;
    if it.next().is_some() {
        return None;
    }
    let payload_start = line_end + 1;
    let payload_end = payload_start.checked_add(len)?;
    if payload_end > rest.len() || !rest.is_char_boundary(payload_end) {
        return None;
    }
    let payload = &rest[payload_start..payload_end];
    if crc32(payload.as_bytes()) != crc {
        return None;
    }
    Some((payload, offset + payload_end))
}

// ---------------------------------------------------------------------------
// Payload serialization. Strict line-oriented `key value…` text: writers and
// parsers are kept adjacent so the format cannot drift.
// ---------------------------------------------------------------------------

fn header_payload(h: &JournalHeader) -> String {
    format!(
        "header\nmethod {}\nroot_seed {}\nepochs {}\nbatch_size {}\nq {}\n",
        h.method.encode(),
        h.root_seed,
        h.epochs,
        h.batch_size,
        h.q
    )
}

fn parse_header_payload(payload: &str) -> Result<JournalHeader, JournalError> {
    let mut r = LineReader::new(payload);
    r.expect_line("header")?;
    let method_code = r.tagged("method")?;
    let method = Method::decode(method_code)
        .ok_or_else(|| perr(format!("unknown method code {method_code:?}")))?;
    let header = JournalHeader {
        method,
        root_seed: r.tagged("root_seed")?.parse().map_err(|_| perr("bad root_seed"))?,
        epochs: r.tagged("epochs")?.parse().map_err(|_| perr("bad epochs"))?,
        batch_size: r
            .tagged("batch_size")?
            .parse()
            .map_err(|_| perr("bad batch_size"))?,
        q: r.tagged("q")?.parse().map_err(|_| perr("bad q"))?,
    };
    r.expect_end()?;
    Ok(header)
}

fn entry_payload(entry: &EpochEntry) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("epoch-entry\n");
    write_state(&mut out, &entry.state);
    write_record(&mut out, &entry.record);
    out
}

fn parse_entry_payload(payload: &str) -> Result<EpochEntry, JournalError> {
    let mut r = LineReader::new(payload);
    r.expect_line("epoch-entry")?;
    let state = read_state(&mut r)?;
    let record = read_record(&mut r)?;
    r.expect_end()?;
    Ok(EpochEntry { state, record })
}

fn write_state(out: &mut String, s: &RunState) {
    use fmt::Write;
    let _ = writeln!(out, "epoch {}", s.epoch);
    let _ = writeln!(out, "iteration {}", s.iteration);
    let _ = writeln!(out, "coord_offset {}", s.coord_offset);
    let _ = writeln!(out, "rollbacks_used {}", s.rollbacks_used);
    match s.loss_ema {
        None => out.push_str("loss_ema none\n"),
        Some(v) => {
            let _ = writeln!(out, "loss_ema {v:?}");
        }
    }
    let _ = writeln!(out, "eval_queries {}", s.eval_queries);
    write_recovery(out, "recovery", &s.recovery);
    out.push_str("ledger");
    for cat in QueryCategory::ALL {
        let _ = write!(out, " {}", s.ledger.get(cat));
    }
    out.push('\n');
    write_rvec(out, "theta", &s.theta);
    write_adam(out, &s.adam);
    write_cma(out, s.cma.as_ref());
    match &s.rollback_snapshot {
        None => out.push_str("rollback_snapshot none\n"),
        Some(snap) => {
            out.push_str("rollback_snapshot some\n");
            write_rvec(out, "theta", &snap.theta);
            write_adam(out, &snap.adam);
            write_cma(out, snap.cma.as_ref());
        }
    }
    match &s.metric_errors {
        None => out.push_str("metric_errors none\n"),
        Some(ev) => {
            let _ = write!(
                out,
                "metric_errors {} {}",
                ev.n_beam_splitters(),
                ev.n_phase_shifters()
            );
            for v in ev.to_flat() {
                let _ = write!(out, " {v:?}");
            }
            out.push('\n');
        }
    }
    let _ = writeln!(out, "events {}", s.recovery_events.len());
    for ev in &s.recovery_events {
        match ev {
            RecoveryEvent::Rollback {
                epoch,
                iteration,
                loss,
                threshold,
                new_lr,
            } => {
                let _ = writeln!(
                    out,
                    "event rollback {epoch} {iteration} {loss:?} {threshold:?} {new_lr:?}"
                );
            }
            RecoveryEvent::Recalibration {
                epoch,
                fidelity_before,
                fidelity_after,
                queries,
                adopted,
            } => {
                let _ = writeln!(
                    out,
                    "event recalibration {epoch} {fidelity_before:?} {fidelity_after:?} {queries} {}",
                    u8::from(*adopted)
                );
            }
        }
    }
}

fn read_state(r: &mut LineReader<'_>) -> Result<RunState, JournalError> {
    let epoch = r.tagged("epoch")?.parse().map_err(|_| perr("bad epoch"))?;
    let iteration = r
        .tagged("iteration")?
        .parse()
        .map_err(|_| perr("bad iteration"))?;
    let coord_offset = r
        .tagged("coord_offset")?
        .parse()
        .map_err(|_| perr("bad coord_offset"))?;
    let rollbacks_used = r
        .tagged("rollbacks_used")?
        .parse()
        .map_err(|_| perr("bad rollbacks_used"))?;
    let loss_ema = match r.tagged("loss_ema")? {
        "none" => None,
        v => Some(parse_f64(v)?),
    };
    let eval_queries = r
        .tagged("eval_queries")?
        .parse()
        .map_err(|_| perr("bad eval_queries"))?;
    let recovery = read_recovery(r, "recovery")?;
    let ledger_line = r.tagged("ledger")?;
    let mut ledger = LedgerCounts::new();
    let counts: Vec<&str> = ledger_line.split_whitespace().collect();
    if counts.len() != QueryCategory::ALL.len() {
        return Err(perr("ledger count mismatch"));
    }
    for (cat, tok) in QueryCategory::ALL.into_iter().zip(counts) {
        ledger.add(cat, tok.parse().map_err(|_| perr("bad ledger count"))?);
    }
    let theta = read_rvec(r, "theta")?;
    let adam = read_adam(r)?;
    let cma = read_cma(r)?;
    let rollback_snapshot = match r.tagged("rollback_snapshot")? {
        "none" => None,
        "some" => Some(RollbackSnapshot {
            theta: read_rvec(r, "theta")?,
            adam: read_adam(r)?,
            cma: read_cma(r)?,
        }),
        other => return Err(perr(format!("bad rollback_snapshot marker {other:?}"))),
    };
    let metric_errors = match r.tagged("metric_errors")? {
        "none" => None,
        rest => {
            let mut it = rest.split_whitespace();
            let n_bs: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| perr("bad metric_errors bs count"))?;
            let n_ps: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| perr("bad metric_errors ps count"))?;
            let flat: Vec<f64> = it.map(parse_f64).collect::<Result<_, _>>()?;
            if flat.len() != n_bs + 2 * n_ps {
                return Err(perr("metric_errors value count mismatch"));
            }
            Some(
                ErrorVector::from_flat(n_bs, n_ps, &flat)
                    .map_err(|e| perr(format!("invalid metric_errors: {e}")))?,
            )
        }
    };
    let n_events: usize = r.tagged("events")?.parse().map_err(|_| perr("bad events"))?;
    let mut recovery_events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let line = r.tagged("event")?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        let ev = match toks.as_slice() {
            ["rollback", epoch, iteration, loss, threshold, new_lr] => RecoveryEvent::Rollback {
                epoch: epoch.parse().map_err(|_| perr("bad event epoch"))?,
                iteration: iteration.parse().map_err(|_| perr("bad event iteration"))?,
                loss: parse_f64(loss)?,
                threshold: parse_f64(threshold)?,
                new_lr: parse_f64(new_lr)?,
            },
            ["recalibration", epoch, before, after, queries, adopted] => {
                RecoveryEvent::Recalibration {
                    epoch: epoch.parse().map_err(|_| perr("bad event epoch"))?,
                    fidelity_before: parse_f64(before)?,
                    fidelity_after: parse_f64(after)?,
                    queries: queries.parse().map_err(|_| perr("bad event queries"))?,
                    adopted: match *adopted {
                        "0" => false,
                        "1" => true,
                        _ => return Err(perr("bad event adopted flag")),
                    },
                }
            }
            _ => return Err(perr(format!("unknown recovery event {line:?}"))),
        };
        recovery_events.push(ev);
    }
    Ok(RunState {
        epoch,
        iteration,
        coord_offset,
        rollbacks_used,
        loss_ema,
        eval_queries,
        ledger,
        recovery,
        theta,
        adam,
        cma,
        rollback_snapshot,
        metric_errors,
        recovery_events,
    })
}

fn write_record(out: &mut String, rec: &EpochRecord) {
    use fmt::Write;
    let _ = writeln!(
        out,
        "record_epoch {} {:?} {} {:?}",
        rec.epoch, rec.train_loss, rec.training_queries, rec.elapsed
    );
    match &rec.test {
        None => out.push_str("record_test none\n"),
        Some(ev) => {
            let _ = writeln!(
                out,
                "record_test {:?} {:?} {}",
                ev.accuracy, ev.loss, ev.samples
            );
        }
    }
    write_recovery(out, "record_recovery", &rec.recovery);
}

fn read_record(r: &mut LineReader<'_>) -> Result<EpochRecord, JournalError> {
    let line = r.tagged("record_epoch")?;
    let toks: Vec<&str> = line.split_whitespace().collect();
    let [epoch, train_loss, training_queries, elapsed] = toks.as_slice() else {
        return Err(perr("bad record_epoch line"));
    };
    let test = match r.tagged("record_test")? {
        "none" => None,
        rest => {
            let t: Vec<&str> = rest.split_whitespace().collect();
            let [accuracy, loss, samples] = t.as_slice() else {
                return Err(perr("bad record_test line"));
            };
            Some(Evaluation {
                accuracy: parse_f64(accuracy)?,
                loss: parse_f64(loss)?,
                samples: samples.parse().map_err(|_| perr("bad test samples"))?,
            })
        }
    };
    Ok(EpochRecord {
        epoch: epoch.parse().map_err(|_| perr("bad record epoch"))?,
        train_loss: parse_f64(train_loss)?,
        test,
        training_queries: training_queries
            .parse()
            .map_err(|_| perr("bad training_queries"))?,
        elapsed: parse_f64(elapsed)?,
        recovery: read_recovery(r, "record_recovery")?,
    })
}

fn write_recovery(out: &mut String, tag: &str, s: &RecoveryStats) {
    use fmt::Write;
    let _ = writeln!(
        out,
        "{tag} {} {} {} {}",
        s.retries, s.rejected_probes, s.rollbacks, s.recalibrations
    );
}

fn read_recovery(r: &mut LineReader<'_>, tag: &str) -> Result<RecoveryStats, JournalError> {
    let line = r.tagged(tag)?;
    let toks: Vec<&str> = line.split_whitespace().collect();
    let [retries, rejected, rollbacks, recalibs] = toks.as_slice() else {
        return Err(perr(format!("bad {tag} line")));
    };
    let p = |v: &str| v.parse::<u64>().map_err(|_| perr(format!("bad {tag} count")));
    Ok(RecoveryStats {
        retries: p(retries)?,
        rejected_probes: p(rejected)?,
        rollbacks: p(rollbacks)?,
        recalibrations: p(recalibs)?,
    })
}

fn write_rvec(out: &mut String, tag: &str, v: &RVector) {
    use fmt::Write;
    let _ = write!(out, "{tag} {}", v.len());
    for x in v.iter() {
        let _ = write!(out, " {x:?}");
    }
    out.push('\n');
}

fn read_rvec(r: &mut LineReader<'_>, tag: &str) -> Result<RVector, JournalError> {
    let line = r.tagged(tag)?;
    let mut it = line.split_whitespace();
    let len: usize = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| perr(format!("bad {tag} length")))?;
    let vals: Vec<f64> = it.map(parse_f64).collect::<Result<_, _>>()?;
    if vals.len() != len {
        return Err(perr(format!(
            "{tag} declares {len} values but carries {}",
            vals.len()
        )));
    }
    Ok(RVector::from_vec(vals))
}

fn write_rmat(out: &mut String, tag: &str, m: &RMatrix) {
    use fmt::Write;
    let _ = write!(out, "{tag} {} {}", m.rows(), m.cols());
    for x in m.as_slice() {
        let _ = write!(out, " {x:?}");
    }
    out.push('\n');
}

fn read_rmat(r: &mut LineReader<'_>, tag: &str) -> Result<RMatrix, JournalError> {
    let line = r.tagged(tag)?;
    let mut it = line.split_whitespace();
    let rows: usize = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| perr(format!("bad {tag} rows")))?;
    let cols: usize = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| perr(format!("bad {tag} cols")))?;
    let vals: Vec<f64> = it.map(parse_f64).collect::<Result<_, _>>()?;
    if vals.len() != rows * cols {
        return Err(perr(format!("{tag} value count mismatch")));
    }
    Ok(RMatrix::from_vec(rows, cols, vals))
}

fn write_adam(out: &mut String, a: &AdamState) {
    use fmt::Write;
    let _ = writeln!(
        out,
        "adam {:?} {:?} {:?} {:?} {}",
        a.lr, a.beta1, a.beta2, a.eps, a.t
    );
    match &a.m {
        None => out.push_str("adam_m none\n"),
        Some(v) => write_rvec(out, "adam_m", v),
    }
    match &a.v {
        None => out.push_str("adam_v none\n"),
        Some(v) => write_rvec(out, "adam_v", v),
    }
}

fn read_adam(r: &mut LineReader<'_>) -> Result<AdamState, JournalError> {
    let line = r.tagged("adam")?;
    let toks: Vec<&str> = line.split_whitespace().collect();
    let [lr, beta1, beta2, eps, t] = toks.as_slice() else {
        return Err(perr("bad adam line"));
    };
    let m = read_opt_rvec(r, "adam_m")?;
    let v = read_opt_rvec(r, "adam_v")?;
    Ok(AdamState {
        lr: parse_f64(lr)?,
        beta1: parse_f64(beta1)?,
        beta2: parse_f64(beta2)?,
        eps: parse_f64(eps)?,
        m,
        v,
        t: t.parse().map_err(|_| perr("bad adam t"))?,
    })
}

fn read_opt_rvec(r: &mut LineReader<'_>, tag: &str) -> Result<Option<RVector>, JournalError> {
    let line = r.tagged(tag)?;
    if line == "none" {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let len: usize = it
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| perr(format!("bad {tag} length")))?;
    let vals: Vec<f64> = it.map(parse_f64).collect::<Result<_, _>>()?;
    if vals.len() != len {
        return Err(perr(format!("{tag} value count mismatch")));
    }
    Ok(Some(RVector::from_vec(vals)))
}

fn write_cma(out: &mut String, cma: Option<&CmaEsState>) {
    use fmt::Write;
    let Some(c) = cma else {
        out.push_str("cma none\n");
        return;
    };
    let _ = writeln!(
        out,
        "cma {} {:?} {} {}",
        c.lambda, c.sigma, c.generation, c.generations_since_eig
    );
    write_rvec(out, "cma_mean", &c.mean);
    write_rmat(out, "cma_cov", &c.cov);
    write_rvec(out, "cma_pc", &c.pc);
    write_rvec(out, "cma_ps", &c.ps);
    write_rmat(out, "cma_eigvec", &c.eig_vectors);
    write_rvec(out, "cma_eigsqrt", &c.eig_sqrt);
    match &c.best {
        None => out.push_str("cma_best none\n"),
        Some((x, loss)) => {
            let _ = write!(out, "cma_best {loss:?} {}", x.len());
            for v in x.iter() {
                let _ = write!(out, " {v:?}");
            }
            out.push('\n');
        }
    }
}

fn read_cma(r: &mut LineReader<'_>) -> Result<Option<CmaEsState>, JournalError> {
    let line = r.tagged("cma")?;
    if line == "none" {
        return Ok(None);
    }
    let toks: Vec<&str> = line.split_whitespace().collect();
    let [lambda, sigma, generation, since_eig] = toks.as_slice() else {
        return Err(perr("bad cma line"));
    };
    let mean = read_rvec(r, "cma_mean")?;
    let cov = read_rmat(r, "cma_cov")?;
    let pc = read_rvec(r, "cma_pc")?;
    let ps = read_rvec(r, "cma_ps")?;
    let eig_vectors = read_rmat(r, "cma_eigvec")?;
    let eig_sqrt = read_rvec(r, "cma_eigsqrt")?;
    let best_line = r.tagged("cma_best")?;
    let best = if best_line == "none" {
        None
    } else {
        let mut it = best_line.split_whitespace();
        let loss = parse_f64(it.next().ok_or_else(|| perr("bad cma_best"))?)?;
        let len: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| perr("bad cma_best length"))?;
        let vals: Vec<f64> = it.map(parse_f64).collect::<Result<_, _>>()?;
        if vals.len() != len {
            return Err(perr("cma_best value count mismatch"));
        }
        Some((RVector::from_vec(vals), loss))
    };
    Ok(Some(CmaEsState {
        lambda: lambda.parse().map_err(|_| perr("bad cma lambda"))?,
        mean,
        sigma: parse_f64(sigma)?,
        cov,
        pc,
        ps,
        eig_vectors,
        eig_sqrt,
        generations_since_eig: since_eig.parse().map_err(|_| perr("bad cma since_eig"))?,
        generation: generation.parse().map_err(|_| perr("bad cma generation"))?,
        best,
    }))
}

fn parse_f64(s: &str) -> Result<f64, JournalError> {
    s.parse::<f64>().map_err(|_| perr(format!("bad float {s:?}")))
}

/// Sequential line reader over one (CRC-verified) payload.
struct LineReader<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> LineReader<'a> {
    fn new(payload: &'a str) -> Self {
        LineReader {
            lines: payload.lines(),
        }
    }

    fn next_line(&mut self, what: &str) -> Result<&'a str, JournalError> {
        self.lines
            .next()
            .ok_or_else(|| perr(format!("unexpected end of payload, expected {what}")))
    }

    fn expect_line(&mut self, exact: &str) -> Result<(), JournalError> {
        let line = self.next_line(exact)?;
        if line != exact {
            return Err(perr(format!("expected {exact:?}, got {line:?}")));
        }
        Ok(())
    }

    /// Next line, which must start with `tag` followed by a space (or be
    /// exactly `tag`); returns the rest.
    fn tagged(&mut self, tag: &str) -> Result<&'a str, JournalError> {
        let line = self.next_line(tag)?;
        if let Some(rest) = line.strip_prefix(tag) {
            if rest.is_empty() {
                return Ok("");
            }
            if let Some(rest) = rest.strip_prefix(' ') {
                return Ok(rest);
            }
        }
        Err(perr(format!("expected `{tag} …`, got {line:?}")))
    }

    fn expect_end(&mut self) -> Result<(), JournalError> {
        match self.lines.next() {
            None => Ok(()),
            Some(line) => Err(perr(format!("unexpected trailing payload line {line:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_trace::QueryCategory;

    fn sample_state(epoch: usize) -> RunState {
        let mut ledger = LedgerCounts::new();
        ledger.add(QueryCategory::Probe, 120 * epoch as u64);
        ledger.add(QueryCategory::BatchLoss, 30 * epoch as u64);
        RunState {
            epoch,
            iteration: 6 * epoch,
            coord_offset: 3,
            rollbacks_used: 1,
            loss_ema: Some(0.731_250_001),
            eval_queries: 40,
            ledger,
            recovery: RecoveryStats {
                retries: 2,
                rejected_probes: 5,
                rollbacks: 1,
                recalibrations: 0,
            },
            theta: RVector::from_slice(&[0.25, -1.5, 3.0e-7, std::f64::consts::PI]),
            adam: AdamState {
                lr: 0.02,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                m: Some(RVector::from_slice(&[0.1, 0.2, 0.3, 0.4])),
                v: Some(RVector::from_slice(&[1e-4, 2e-4, 3e-4, 4e-4])),
                t: 42,
            },
            cma: None,
            rollback_snapshot: None,
            metric_errors: None,
            recovery_events: vec![RecoveryEvent::Rollback {
                epoch: 1,
                iteration: 3,
                loss: f64::INFINITY,
                threshold: 2.5,
                new_lr: 0.01,
            }],
        }
    }

    fn sample_entry(epoch: usize) -> EpochEntry {
        EpochEntry {
            state: sample_state(epoch),
            record: EpochRecord {
                epoch,
                train_loss: 0.5 / epoch as f64,
                test: epoch.is_multiple_of(2).then_some(Evaluation {
                    accuracy: 0.75,
                    loss: 0.61,
                    samples: 30,
                }),
                training_queries: 150 * epoch as u64,
                elapsed: 1.25,
                recovery: RecoveryStats::default(),
            },
        }
    }

    fn header() -> JournalHeader {
        JournalHeader {
            method: Method::Lcng {
                model: crate::ModelChoice::Calibrated,
            },
            root_seed: 77,
            epochs: 5,
            batch_size: 16,
            q: 4,
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn epoch_seed_is_stable_and_spread() {
        assert_eq!(epoch_seed(7, 3), epoch_seed(7, 3));
        assert_ne!(epoch_seed(7, 3), epoch_seed(7, 4));
        assert_ne!(epoch_seed(7, 3), epoch_seed(8, 3));
        assert_ne!(epoch_seed(7, 0), epoch_seed(7, 1));
    }

    #[test]
    fn entry_payload_roundtrips_bitwise() {
        for epoch in [1usize, 2] {
            let entry = sample_entry(epoch);
            let payload = entry_payload(&entry);
            let back = parse_entry_payload(&payload).unwrap();
            assert_eq!(back, entry);
        }
    }

    #[test]
    fn entry_payload_roundtrips_cma_and_snapshot() {
        let mut entry = sample_entry(1);
        let es = photon_opt::CmaEs::with_population(&RVector::from_slice(&[1.0, 2.0]), 0.5, 6);
        entry.state.cma = Some(es.snapshot());
        entry.state.rollback_snapshot = Some(RollbackSnapshot {
            theta: RVector::from_slice(&[9.0, 8.0, 7.0, 6.0]),
            adam: entry.state.adam.clone(),
            cma: Some(es.snapshot()),
        });
        let back = parse_entry_payload(&entry_payload(&entry)).unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn journal_roundtrip_and_replay() {
        let dir = std::env::temp_dir().join("photon_zo_journal_roundtrip");
        let path = dir.join("run.journal");
        let mut journal = RunJournal::create(&path, &header()).unwrap();
        for epoch in 1..=3 {
            journal.append_epoch(&sample_entry(epoch)).unwrap();
        }
        assert_eq!(journal.records(), 4); // header + 3 epochs
        drop(journal);
        let replay = RunJournal::replay(&path).unwrap();
        assert_eq!(replay.header, header());
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(replay.entries[2], sample_entry(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = std::env::temp_dir().join("photon_zo_journal_torn");
        let path = dir.join("run.journal");
        let mut journal = RunJournal::create(&path, &header()).unwrap();
        journal.append_epoch(&sample_entry(1)).unwrap();
        journal.append_epoch(&sample_entry(2)).unwrap();
        drop(journal);
        let clean_len = fs::metadata(&path).unwrap().len();
        // Simulate a kill mid-append: half a record frame at the tail.
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"record 5000 deadbeef\nepoch-entry\nepoch 3\ntorn...").unwrap();
        drop(f);

        let replay = RunJournal::replay(&path).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert!(replay.truncated_bytes > 0);
        assert_eq!(fs::metadata(&path).unwrap().len(), clean_len);

        // The log keeps working after recovery.
        let mut journal = RunJournal::open_append(&path).unwrap();
        journal.append_epoch(&sample_entry(3)).unwrap();
        let replay = RunJournal::replay(&path).unwrap();
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.truncated_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_payload_marks_torn_tail() {
        let dir = std::env::temp_dir().join("photon_zo_journal_corrupt");
        let path = dir.join("run.journal");
        let mut journal = RunJournal::create(&path, &header()).unwrap();
        journal.append_epoch(&sample_entry(1)).unwrap();
        journal.append_epoch(&sample_entry(2)).unwrap();
        drop(journal);
        // Flip one byte inside the *last* record's payload.
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let replay = RunJournal::replay(&path).unwrap();
        assert_eq!(replay.entries.len(), 1, "corrupt record must be dropped");
        assert!(replay.truncated_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_parse_error_not_panic() {
        let dir = std::env::temp_dir().join("photon_zo_journal_magic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.journal");
        fs::write(&path, "not a journal\nrecord 1 00000000\nx").unwrap();
        let err = RunJournal::replay(&path).unwrap_err();
        assert!(matches!(err, JournalError::Parse { .. }));
        assert!(err.to_string().contains("magic"));
        fs::write(&path, "photon-zo-journal v9\n").unwrap();
        let err = RunJournal::replay(&path).unwrap_err();
        assert!(err.to_string().contains("unsupported journal version"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_epochs_rejected() {
        let dir = std::env::temp_dir().join("photon_zo_journal_order");
        let path = dir.join("run.journal");
        let mut journal = RunJournal::create(&path, &header()).unwrap();
        journal.append_epoch(&sample_entry(2)).unwrap();
        journal.append_epoch(&sample_entry(1)).unwrap();
        drop(journal);
        let err = RunJournal::replay(&path).unwrap_err();
        assert!(err.to_string().contains("out of order"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_writer_fails_fast_with_locked_error() {
        let dir = std::env::temp_dir().join("photon_zo_journal_lock");
        let path = dir.join("run.journal");
        let journal = RunJournal::create(&path, &header()).unwrap();

        // A second creator must not blank the live WAL…
        let before = fs::read(&path).unwrap();
        let err = RunJournal::create(&path, &header()).unwrap_err();
        assert!(matches!(err, JournalError::Locked { .. }), "{err}");
        assert!(err.to_string().contains("locked"));
        assert_eq!(fs::read(&path).unwrap(), before, "live WAL must be untouched");

        // …and a second appender must fail the same way.
        let err = RunJournal::open_append(&path).unwrap_err();
        assert!(matches!(
            err,
            JournalError::Locked {
                holder: Some(pid), ..
            } if pid == std::process::id()
        ));

        // Dropping the first handle releases the lock.
        drop(journal);
        let _ = RunJournal::open_append(&path).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_dead_process_is_reclaimed() {
        let dir = std::env::temp_dir().join("photon_zo_journal_stale_lock");
        let path = dir.join("run.journal");
        let journal = RunJournal::create(&path, &header()).unwrap();
        drop(journal);
        // Forge the lock a SIGKILLed writer would leave behind: an absurdly
        // large pid that cannot name a live process.
        fs::write(lock_path(&path), "4194304999").unwrap();
        let journal = RunJournal::open_append(&path).expect("stale lock must be reclaimed");
        drop(journal);
        assert!(!lock_path(&path).exists(), "lock released on drop");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_procfs_treats_holder_as_live() {
        // Hosts without /proc mounted (minimal containers, chroots) have no
        // liveness signal; the probe must fail safe to "live" instead of
        // declaring every pid dead and misreclaiming a live writer's lock.
        let dir = std::env::temp_dir().join("photon_zo_journal_no_procfs");
        let _ = fs::remove_dir_all(&dir);
        let absent_proc = dir.join("proc");
        assert!(process_alive_under(&absent_proc, 1), "no procfs → live");
        assert!(
            process_alive_under(&absent_proc, 4194304999),
            "even an absurd pid must read as live without procfs"
        );

        // With a procfs root present, the per-pid lookup decides.
        fs::create_dir_all(absent_proc.join("42")).unwrap();
        assert!(process_alive_under(&dir.join("proc"), 42));
        assert!(!process_alive_under(&dir.join("proc"), 43));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparseable_lockfile_is_treated_as_live() {
        let dir = std::env::temp_dir().join("photon_zo_journal_garbage_lock");
        let path = dir.join("run.journal");
        let journal = RunJournal::create(&path, &header()).unwrap();
        drop(journal);
        // A lockfile whose holder cannot be identified must fail safe.
        fs::write(lock_path(&path), "not-a-pid").unwrap();
        let err = RunJournal::open_append(&path).unwrap_err();
        assert!(matches!(err, JournalError::Locked { holder: None, .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_makes_missing_parent_directories() {
        let dir = std::env::temp_dir().join("photon_zo_journal_parents");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("deeply/nested/run.journal");
        let mut journal = RunJournal::create(&path, &header()).unwrap();
        journal.append_epoch(&sample_entry(1)).unwrap();
        drop(journal);
        assert_eq!(RunJournal::replay(&path).unwrap().entries.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_path_is_typed_io_error_not_panic() {
        let dir = std::env::temp_dir().join("photon_zo_journal_unwritable");
        fs::create_dir_all(&dir).unwrap();
        // The "parent directory" is actually a file, so neither the dir
        // creation nor the journal write can succeed.
        let blocker = dir.join("blocker");
        fs::write(&blocker, "i am a file").unwrap();
        let err = RunJournal::create(&blocker.join("run.journal"), &header()).unwrap_err();
        assert!(matches!(err, JournalError::Io(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
