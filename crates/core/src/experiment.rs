//! Experiment harness: reproducible task construction and repeated-seed
//! comparison runs — the machinery every table/figure binary builds on.

use rand::rngs::StdRng;
use rand::SeedableRng;

use photon_calib::{calibrate_traced, CalibrationSettings};
use photon_data::{images_to_dataset, Dataset, GaussianClusters, SyntheticFashion, SyntheticMnist};
use photon_photonics::{Architecture, ErrorModel, FabricatedChip};

use crate::loss::{ClassificationHead, CoreError};
use crate::stats::RunSummary;
use crate::trainer::{Method, TrainConfig, TrainOutcome, Trainer};

/// The workload family of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Synthetic MNIST substitute (seven-segment digits → DFT features).
    MnistLike,
    /// Synthetic FashionMNIST substitute (textures/shapes → DFT features).
    FashionLike,
    /// Gaussian clusters directly in feature space (fast smoke workload).
    Clusters,
}

impl TaskKind {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            TaskKind::MnistLike => "MNIST-like",
            TaskKind::FashionLike => "Fashion-like",
            TaskKind::Clusters => "Clusters",
        }
    }
}

/// A fully specified, seed-reproducible experimental task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Workload family.
    pub kind: TaskKind,
    /// Feature dimension `K` (ONN width).
    pub k: usize,
    /// Clements mesh layer count `L` (`L = K` is the full mesh).
    pub l: usize,
    /// Training samples.
    pub train_size: usize,
    /// Test samples.
    pub test_size: usize,
    /// Fabrication-error magnitude `β`.
    pub beta: f64,
    /// Detector gain of the classification head.
    pub gain: f64,
}

impl TaskSpec {
    /// The default image-classification task at width `k` with a full mesh.
    ///
    /// # Panics
    ///
    /// Panics when `k < 10`: the 10-class power readout needs at least ten
    /// output ports.
    pub fn image(kind: TaskKind, k: usize) -> Self {
        assert!(k >= 10, "image tasks need k >= 10 for the 10-class readout");
        TaskSpec {
            kind,
            k,
            l: k,
            train_size: 400,
            test_size: 200,
            beta: 1.0,
            gain: 10.0,
        }
    }

    /// A small fast task for tests and examples.
    pub fn quick(k: usize) -> Self {
        TaskSpec {
            kind: TaskKind::Clusters,
            k,
            l: k,
            train_size: 96,
            test_size: 48,
            beta: 1.0,
            gain: 10.0,
        }
    }

    /// Number of classes of the workload.
    pub fn num_classes(&self) -> usize {
        match self.kind {
            TaskKind::MnistLike | TaskKind::FashionLike => 10,
            TaskKind::Clusters => self.k.min(4),
        }
    }

    /// The ONN architecture of this task: the two-mesh classifier for image
    /// workloads, a single mesh for the cluster workload.
    ///
    /// # Errors
    ///
    /// Propagates architecture validation failures (requires `k ≥ 2`).
    pub fn architecture(&self) -> Result<Architecture, photon_photonics::NetworkError> {
        match self.kind {
            TaskKind::MnistLike | TaskKind::FashionLike => {
                Architecture::two_mesh_classifier(self.k, self.l)
            }
            TaskKind::Clusters => Architecture::single_mesh(self.k, self.l),
        }
    }
}

/// Everything a training run needs, constructed reproducibly from a seed.
#[derive(Debug)]
pub struct TaskInstance {
    /// The fabricated (noisy, black-box) chip.
    pub chip: FabricatedChip,
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
    /// Readout head.
    pub head: ClassificationHead,
}

/// Builds a [`TaskInstance`] from a spec and seed. The same `(spec, seed)`
/// pair always produces the identical chip and data.
///
/// # Errors
///
/// Propagates dataset/architecture/head construction failures.
pub fn build_task(spec: &TaskSpec, seed: u64) -> Result<TaskInstance, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let arch = spec
        .architecture()
        .map_err(|e| CoreError::InvalidConfig(format!("architecture: {e}")))?;
    let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(spec.beta), &mut rng);

    let num_classes = spec.num_classes();
    let total = spec.train_size + spec.test_size;
    let data = match spec.kind {
        TaskKind::MnistLike => {
            let images = SyntheticMnist::new().generate(total, &mut rng);
            images_to_dataset(&images, spec.k, 10)
                .map_err(|e| CoreError::InvalidConfig(format!("dataset: {e}")))?
        }
        TaskKind::FashionLike => {
            let images = SyntheticFashion::new().generate(total, &mut rng);
            images_to_dataset(&images, spec.k, 10)
                .map_err(|e| CoreError::InvalidConfig(format!("dataset: {e}")))?
        }
        TaskKind::Clusters => GaussianClusters::new(spec.k, num_classes, 0.15)
            .generate(total, &mut rng)
            .map_err(|e| CoreError::InvalidConfig(format!("dataset: {e}")))?,
    };
    let train_frac = spec.train_size as f64 / total as f64;
    let (train, test) = data.split(train_frac, &mut rng);
    let head = ClassificationHead::new(spec.k, num_classes, spec.gain)?;
    Ok(TaskInstance {
        chip,
        train,
        test,
        head,
    })
}

/// The aggregate of repeated runs of one method on one task.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method label.
    pub method: String,
    /// Final test accuracies over runs.
    pub accuracy: RunSummary,
    /// Final training losses over runs.
    pub train_loss: RunSummary,
    /// Final test losses over runs.
    pub test_loss: RunSummary,
    /// Mean training chip queries per run.
    pub mean_queries: f64,
    /// The per-run outcomes (histories included).
    pub outcomes: Vec<TrainOutcome>,
}

/// Runs `method` for `runs` independent seeds (fresh chip, data and
/// initialization per seed) and aggregates the results.
///
/// When `calibration` is provided, each run first calibrates its chip with
/// the given settings and attaches the calibrated model.
///
/// # Errors
///
/// Propagates task-construction and training failures.
pub fn run_method(
    spec: &TaskSpec,
    method: Method,
    config: &TrainConfig,
    runs: usize,
    base_seed: u64,
    calibration: Option<&CalibrationSettings>,
) -> Result<MethodResult, CoreError> {
    assert!(runs > 0, "need at least one run");
    let mut accs = Vec::with_capacity(runs);
    let mut train_losses = Vec::with_capacity(runs);
    let mut test_losses = Vec::with_capacity(runs);
    let mut queries = Vec::with_capacity(runs);
    let mut outcomes = Vec::with_capacity(runs);

    for r in 0..runs {
        let seed = base_seed.wrapping_add(r as u64).wrapping_mul(0x9e3779b9);
        let task = build_task(spec, seed)?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);

        let mut trainer = Trainer::new(&task.chip, &task.train, &task.test, task.head);
        if let Some(cal_settings) = calibration {
            // Pre-run calibration goes through the traced entry point so a
            // traced experiment ledgers its epoch-0 spend; with a null sink
            // this is identical to plain `calibrate`.
            let outcome = calibrate_traced(&task.chip, cal_settings, &mut rng, &config.trace)
                .map_err(|e| CoreError::InvalidConfig(format!("calibration: {e}")))?;
            trainer = trainer.with_calibrated_model(outcome.model);
        }

        let outcome = trainer.train(method, config, &mut rng)?;
        accs.push(outcome.final_eval.accuracy);
        test_losses.push(outcome.final_eval.loss);
        train_losses.push(
            outcome
                .history
                .last()
                .map(|h| h.train_loss)
                .unwrap_or(f64::NAN),
        );
        queries.push(outcome.training_queries as f64);
        outcomes.push(outcome);
    }

    Ok(MethodResult {
        method: method.label(),
        accuracy: RunSummary::from_values(&accs),
        train_loss: RunSummary::from_values(&train_losses),
        test_loss: RunSummary::from_values(&test_losses),
        mean_queries: queries.iter().sum::<f64>() / runs as f64,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_building_is_reproducible() {
        let spec = TaskSpec::quick(4);
        let a = build_task(&spec, 7).unwrap();
        let b = build_task(&spec, 7).unwrap();
        assert_eq!(a.chip.oracle_errors(), b.chip.oracle_errors());
        assert_eq!(a.train.inputs()[0], b.train.inputs()[0]);
        assert_eq!(a.train.len(), spec.train_size);
        assert_eq!(a.test.len(), spec.test_size);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = TaskSpec::quick(4);
        let a = build_task(&spec, 1).unwrap();
        let b = build_task(&spec, 2).unwrap();
        assert_ne!(a.chip.oracle_errors(), b.chip.oracle_errors());
    }

    #[test]
    fn image_task_shapes() {
        let spec = TaskSpec {
            train_size: 30,
            test_size: 10,
            ..TaskSpec::image(TaskKind::MnistLike, 12)
        };
        let task = build_task(&spec, 3).unwrap();
        assert_eq!(task.train.input_dim(), 12);
        assert_eq!(task.train.num_classes(), 10);
        assert_eq!(task.chip.input_dim(), 12);
        // Two-mesh classifier for image tasks.
        assert_eq!(task.chip.architecture().specs().len(), 5);
    }

    #[test]
    fn run_method_aggregates() {
        let spec = TaskSpec::quick(4);
        let mut config = TrainConfig::quick(4);
        config.epochs = 2;
        config.warm_epochs = 2;
        let res = run_method(&spec, Method::ZoGaussian, &config, 2, 42, None).unwrap();
        assert_eq!(res.accuracy.values.len(), 2);
        assert_eq!(res.outcomes.len(), 2);
        assert!(res.mean_queries > 0.0);
        assert_eq!(res.method, "ZO-I");
    }

    #[test]
    fn labels() {
        assert_eq!(TaskKind::MnistLike.label(), "MNIST-like");
        assert_eq!(TaskKind::Clusters.label(), "Clusters");
        assert_eq!(TaskSpec::quick(6).num_classes(), 4);
        assert_eq!(TaskSpec::image(TaskKind::FashionLike, 16).num_classes(), 10);
    }
}
