//! The two-stage training orchestrator.
//!
//! Stage 1 (warm start): a few epochs of backpropagation on the *ideal*
//! software model — fast but systematically wrong about the fabricated
//! chip's errors.
//!
//! Stage 2 (black-box fine-tune): the compared method runs against the
//! chip, seeing only loss values. Methods:
//!
//! | label        | description |
//! |--------------|-------------|
//! | `ZO-I`       | vanilla ZO, `N(0, I)` probes, Adam |
//! | `ZO-co`      | coordinate-wise ZO probes, Adam |
//! | `ZO-Σ`       | ZO with layered covariance-shaped probes (extension) |
//! | `ZO-LC`      | linear combination, identity metric (ablation) |
//! | `ZO-NG`      | vanilla ZO + block natural-gradient preconditioning |
//! | `ZO-LCNG`    | **the paper's method**: linear combination natural gradient with a model Fisher metric |
//! | `CMA`        | CMA-ES over all parameters |
//! | `BP-ideal`   | backprop on the ideal model (never queries the chip) |
//! | `BP-calib`   | backprop on the calibrated model |
//! | `BP-oracle`  | backprop with perfect error information (upper bound) |

use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use photon_calib::{calibrate, evaluate_model, CalibrationSettings};
use photon_data::{Batcher, Dataset};
use photon_exec::{run_guarded, ExecPool, WatchdogPolicy};
use photon_linalg::RVector;
use photon_opt::{
    estimate_gradient_pooled, estimate_gradient_robust_pooled, layered_sigma_segments,
    lcng_direction_pooled, lcng_direction_robust_pooled, penalize_non_finite, Adam,
    BlockNaturalPreconditioner, CmaEs, LcngSettings, MetricSource, Optimizer, Perturbation,
    RobustEval, ZoSettings,
};
use photon_photonics::{ideal_model, CacheStats, ErrorVector, FabricatedChip, Network, OnnChip};
use photon_trace::{LedgerCounts, QueryCategory, TraceEvent, TraceHandle};

use crate::journal::{
    epoch_seed, EpochEntry, JournalError, JournalHeader, Replay, RollbackSnapshot, RunJournal,
    RunState,
};
use crate::loss::{ClassificationHead, CoreError};
use crate::metrics::{
    batch_inputs, chip_batch_loss_pooled, evaluate_chip_pooled, model_batch_loss_and_grad_pooled,
    Evaluation,
};

impl From<JournalError> for CoreError {
    fn from(e: JournalError) -> Self {
        CoreError::Journal(e.to_string())
    }
}

/// Which software model supplies curvature / error information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelChoice {
    /// Error-free model (no measurements needed).
    Ideal,
    /// Calibrated model attached via [`Trainer::with_calibrated_model`].
    Calibrated,
    /// Oracle model with the chip's true errors (upper-bound ablation).
    OracleTrue,
}

impl ModelChoice {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ModelChoice::Ideal => "ideal",
            ModelChoice::Calibrated => "calib",
            ModelChoice::OracleTrue => "oracle",
        }
    }
}

/// A stage-2 training method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Vanilla ZO with Gaussian probes ("ZO-I").
    ZoGaussian,
    /// Coordinate-wise ZO ("ZO-co").
    ZoCoordinate,
    /// ZO with layered covariance-shaped probes ("ZO-Σ", extension).
    ZoShaped {
        /// Metric-model source for the probe covariance.
        model: ModelChoice,
    },
    /// Linear combination with identity metric ("ZO-LC", ablation).
    ZoLc,
    /// Vanilla ZO preconditioned by block Fisher ("ZO-NG", ablation).
    ZoNg {
        /// Metric-model source for the preconditioner.
        model: ModelChoice,
    },
    /// Linear combination natural gradient ("ZO-LCNG", the paper's method).
    Lcng {
        /// Metric-model source for the Gram curvature.
        model: ModelChoice,
    },
    /// CMA-ES baseline.
    Cma {
        /// Initial global step size σ₀.
        sigma0: f64,
    },
    /// Backprop on the ideal model (never touches the chip in stage 2).
    BpIdeal,
    /// Backprop on the calibrated model.
    BpCalibrated,
    /// Backprop with perfect error information (upper bound).
    BpOracle,
}

impl Method {
    /// The label used in tables and figures.
    pub fn label(&self) -> String {
        match self {
            Method::ZoGaussian => "ZO-I".into(),
            Method::ZoCoordinate => "ZO-co".into(),
            Method::ZoShaped { model } => format!("ZO-S({})", model.label()),
            Method::ZoLc => "ZO-LC".into(),
            Method::ZoNg { model } => format!("ZO-NG({})", model.label()),
            Method::Lcng { model } => format!("ZO-LCNG({})", model.label()),
            Method::Cma { .. } => "CMA".into(),
            Method::BpIdeal => "BP-ideal".into(),
            Method::BpCalibrated => "BP-calib".into(),
            Method::BpOracle => "BP-oracle".into(),
        }
    }

    /// Stable machine-readable code used by the run journal's header
    /// record. Inverse of [`Method::decode`].
    pub fn encode(&self) -> String {
        match self {
            Method::ZoGaussian => "zo-i".into(),
            Method::ZoCoordinate => "zo-co".into(),
            Method::ZoShaped { model } => format!("zo-s {}", model.label()),
            Method::ZoLc => "zo-lc".into(),
            Method::ZoNg { model } => format!("zo-ng {}", model.label()),
            Method::Lcng { model } => format!("lcng {}", model.label()),
            Method::Cma { sigma0 } => format!("cma {sigma0:?}"),
            Method::BpIdeal => "bp-ideal".into(),
            Method::BpCalibrated => "bp-calib".into(),
            Method::BpOracle => "bp-oracle".into(),
        }
    }

    /// Parses a [`Method::encode`] code. Returns `None` for unknown codes.
    pub fn decode(code: &str) -> Option<Method> {
        let mut it = code.split_whitespace();
        let head = it.next()?;
        let model = |arg: Option<&str>| -> Option<ModelChoice> {
            match arg? {
                "ideal" => Some(ModelChoice::Ideal),
                "calib" => Some(ModelChoice::Calibrated),
                "oracle" => Some(ModelChoice::OracleTrue),
                _ => None,
            }
        };
        let method = match head {
            "zo-i" => Method::ZoGaussian,
            "zo-co" => Method::ZoCoordinate,
            "zo-s" => Method::ZoShaped { model: model(it.next())? },
            "zo-lc" => Method::ZoLc,
            "zo-ng" => Method::ZoNg { model: model(it.next())? },
            "lcng" => Method::Lcng { model: model(it.next())? },
            "cma" => Method::Cma {
                sigma0: it.next()?.parse().ok()?,
            },
            "bp-ideal" => Method::BpIdeal,
            "bp-calib" => Method::BpCalibrated,
            "bp-oracle" => Method::BpOracle,
            _ => return None,
        };
        if it.next().is_some() {
            return None;
        }
        Some(method)
    }

    /// Whether stage 2 consumes chip queries for training.
    pub fn queries_chip(&self) -> bool {
        !matches!(
            self,
            Method::BpIdeal | Method::BpCalibrated | Method::BpOracle
        )
    }
}

/// Hyperparameters shared by the two training stages.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Stage-1 warm-start epochs (backprop on the ideal model).
    pub warm_epochs: usize,
    /// Stage-1 learning rate.
    pub warm_lr: f64,
    /// Stage-2 epochs.
    pub epochs: usize,
    /// Mini-batch size `B`.
    pub batch_size: usize,
    /// Probe count `Q` per ZO estimate.
    pub q: usize,
    /// Stage-2 learning rate (Adam).
    pub lr: f64,
    /// Damping `ρ` for natural-gradient blocks and shaped covariances.
    pub rho: f64,
    /// Relative ridge for the LCNG Gram solve.
    pub ridge: f64,
    /// Refresh cadence `T_ud` (iterations) of preconditioners / covariances.
    pub t_update: usize,
    /// Number of Fisher-metric input vectors `R_in` per refresh.
    pub r_in: usize,
    /// Evaluate on the test set every this many epochs (0 = only at the
    /// end).
    pub eval_every: usize,
    /// Override of the ZO smoothing step `μ` (default `1e-3/√N`). Raise it
    /// when the chip has measurement noise: quotients average the noise
    /// over a larger loss difference.
    pub mu_override: Option<f64>,
    /// Worker threads for probe / batch / Fisher / population evaluation.
    /// `None` honours `PHOTON_THREADS` (falling back to the machine's
    /// available parallelism); `Some(1)` forces exact serial execution.
    pub threads: Option<usize>,
    /// Self-healing policy for faulty chips. The presets disable it, which
    /// keeps the legacy training path bitwise intact; enable it (e.g.
    /// [`RecoveryPolicy::standard`]) when the chip may drift, spike, or
    /// drop reads.
    pub recovery: RecoveryPolicy,
    /// Telemetry sink. Defaults to the null handle, which keeps the
    /// training hot paths allocation-free and the run bitwise identical to
    /// an untraced one; attach a sink (e.g.
    /// [`photon_trace::TraceHandle::jsonl`]) to receive structured
    /// [`TraceEvent`]s — epoch spans, the per-category query ledger, cache
    /// / pool counters and recovery actions.
    pub trace: TraceHandle,
}

/// Self-healing policy: how the trainer reacts to faulty chip behaviour.
///
/// The recovery ladder, in escalation order:
///
/// 1. **retry** — non-finite loss readings are re-measured in place;
/// 2. **reject** — outlier difference quotients are screened out and
///    re-read (see [`photon_opt::RobustEval`]);
/// 3. **rollback** — a diverging iteration (non-finite base loss, or base
///    loss above `spike_factor ×` its running EMA) restores the last good
///    `(θ, optimizer)` snapshot and shrinks the learning rate;
/// 4. **recalibrate** — when the metric model's measured fidelity falls
///    below `fidelity_threshold`, the chip is recalibrated in place and the
///    model replaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Master switch. When `false` every other field is ignored and the
    /// training path is bitwise identical to the pre-recovery trainer.
    pub enabled: bool,
    /// Immediate re-measurements of a non-finite loss reading.
    pub max_retries: u32,
    /// Robust z-score beyond which a difference quotient is rejected.
    pub outlier_zscore: f64,
    /// Re-reads replacing a rejected probe (median taken).
    pub rereads: usize,
    /// Base-loss spike threshold as a multiple of the loss EMA.
    pub spike_factor: f64,
    /// EMA smoothing factor for the divergence guard (weight of the newest
    /// loss).
    pub ema_alpha: f64,
    /// Learning-rate multiplier applied at each rollback.
    pub lr_backoff: f64,
    /// Maximum rollbacks per fine-tune run.
    pub max_rollbacks: usize,
    /// Power-fidelity floor below which auto-recalibration triggers.
    pub fidelity_threshold: f64,
    /// Check model fidelity every this many epochs (0 = never).
    pub fidelity_every: usize,
    /// Random probes per fidelity check.
    pub fidelity_probes: usize,
    /// Chip-query budget per auto-recalibration (0 = never recalibrate).
    pub recalib_budget: usize,
}

impl RecoveryPolicy {
    /// Recovery off: the trainer behaves exactly as if the policy did not
    /// exist.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            enabled: false,
            max_retries: 0,
            outlier_zscore: 0.0,
            rereads: 0,
            spike_factor: 0.0,
            ema_alpha: 0.0,
            lr_backoff: 1.0,
            max_rollbacks: 0,
            fidelity_threshold: 0.0,
            fidelity_every: 0,
            fidelity_probes: 0,
            recalib_budget: 0,
        }
    }

    /// A balanced default for chips with drift and transient faults.
    pub fn standard() -> Self {
        RecoveryPolicy {
            enabled: true,
            max_retries: 3,
            outlier_zscore: 6.0,
            rereads: 3,
            spike_factor: 3.0,
            ema_alpha: 0.3,
            lr_backoff: 0.5,
            max_rollbacks: 8,
            fidelity_threshold: 0.995,
            fidelity_every: 1,
            fidelity_probes: 8,
            recalib_budget: 64,
        }
    }
}

/// Counts of recovery actions over one epoch (on [`EpochRecord`]) or one
/// run (on [`TrainOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Non-finite loss readings that were re-measured.
    pub retries: u64,
    /// Probes rejected by the outlier screen (including unrecoverable ones
    /// that were zeroed out of the estimate).
    pub rejected_probes: u64,
    /// Divergence rollbacks to the last good snapshot.
    pub rollbacks: u64,
    /// Auto-recalibrations of the metric model.
    pub recalibrations: u64,
}

impl RecoveryStats {
    /// Accumulates another period's stats into this one.
    pub fn absorb(&mut self, other: RecoveryStats) {
        self.retries += other.retries;
        self.rejected_probes += other.rejected_probes;
        self.rollbacks += other.rollbacks;
        self.recalibrations += other.recalibrations;
    }

    /// `true` when no recovery action of any kind was taken.
    pub fn is_quiet(&self) -> bool {
        *self == RecoveryStats::default()
    }
}

/// One structured recovery action, in the order it occurred.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// The divergence guard rolled training back to the last good snapshot.
    Rollback {
        /// Stage-2 epoch (1-based) the rollback occurred in.
        epoch: usize,
        /// Global iteration index at the rollback.
        iteration: usize,
        /// The offending base loss (may be infinite).
        loss: f64,
        /// The spike threshold it exceeded (infinite when the trigger was a
        /// non-finite reading before any EMA existed).
        threshold: f64,
        /// Learning rate after the backoff.
        new_lr: f64,
    },
    /// The fidelity monitor recalibrated the metric model in place.
    Recalibration {
        /// Stage-2 epoch (1-based) the recalibration occurred in.
        epoch: usize,
        /// Measured power fidelity that triggered the recalibration.
        fidelity_before: f64,
        /// Power fidelity of the freshly calibrated model.
        fidelity_after: f64,
        /// Chip queries the monitor + recalibration consumed.
        queries: u64,
        /// Whether the new model was adopted. A recalibration whose own
        /// measurements were fault-corrupted can come out *worse* than the
        /// incumbent; such a model is measured, rejected and discarded.
        adopted: bool,
    },
}

impl TrainConfig {
    /// Paper-line defaults scaled to a network with `n` parameters and
    /// input dimension `k`: `B = 100`, `Q = K`, `T_ud = 100`, `ρ = 0.1`.
    pub fn for_network(n: usize, k: usize) -> Self {
        let _ = n;
        TrainConfig {
            warm_epochs: 10,
            warm_lr: 0.02,
            epochs: 100,
            batch_size: 100,
            q: k.max(2),
            lr: 0.01,
            rho: 0.1,
            ridge: 0.1,
            t_update: 100,
            r_in: 8,
            eval_every: 0,
            mu_override: None,
            threads: None,
            recovery: RecoveryPolicy::disabled(),
            trace: TraceHandle::null(),
        }
    }

    /// A fast preset for tests and examples.
    pub fn quick(k: usize) -> Self {
        TrainConfig {
            warm_epochs: 3,
            warm_lr: 0.02,
            epochs: 5,
            batch_size: 16,
            q: k.max(2),
            lr: 0.02,
            rho: 0.1,
            ridge: 0.1,
            t_update: 10,
            r_in: 4,
            eval_every: 0,
            mu_override: None,
            threads: None,
            recovery: RecoveryPolicy::disabled(),
            trace: TraceHandle::null(),
        }
    }
}

/// One epoch's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Stage-2 epoch index (1-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Test evaluation, when scheduled this epoch.
    pub test: Option<Evaluation>,
    /// Cumulative *training* chip queries at the end of the epoch
    /// (evaluation sweeps excluded).
    pub training_queries: u64,
    /// Wall-clock seconds since stage 2 started.
    pub elapsed: f64,
    /// Recovery actions taken during this epoch.
    pub recovery: RecoveryStats,
}

/// The result of a full two-stage run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Method label.
    pub method: String,
    /// Per-epoch records.
    pub history: Vec<EpochRecord>,
    /// Final test evaluation on the chip.
    pub final_eval: Evaluation,
    /// Final parameters.
    pub theta: RVector,
    /// Total training chip queries (stage 2, excluding evaluations).
    pub training_queries: u64,
    /// Aggregate recovery actions over the whole run.
    pub recovery: RecoveryStats,
    /// Structured recovery events, in order of occurrence.
    pub recovery_events: Vec<RecoveryEvent>,
}

/// Configuration of a durable (journaled, resumable) training run.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Where the run journal lives. [`Trainer::train_durable`] creates it
    /// (truncating any previous file); [`Trainer::resume`] replays it.
    pub journal_path: PathBuf,
    /// Root seed. Every per-epoch RNG stream (and the warm start, as
    /// "epoch 0") is re-derived from it via [`epoch_seed`], which is what
    /// makes a resumed run bitwise identical to an uninterrupted one.
    pub root_seed: u64,
    /// Deadline / retry policy guarding each epoch's chip queries.
    pub watchdog: WatchdogPolicy,
    /// Maximum number of *new* epochs this invocation may complete before
    /// returning a resumable [`AbortReason::Preempted`] abort. `None` (the
    /// default) runs to the configured epoch count. This is the preemption
    /// primitive a slice scheduler is built on: the journal already holds
    /// every completed epoch, so a preempted run resumes anywhere —
    /// including on a different worker — bitwise identically.
    pub epoch_budget: Option<usize>,
}

impl DurableOptions {
    /// Durable options with the standard watchdog policy.
    pub fn new(journal_path: impl Into<PathBuf>, root_seed: u64) -> Self {
        DurableOptions {
            journal_path: journal_path.into(),
            root_seed,
            watchdog: WatchdogPolicy::standard(),
            epoch_budget: None,
        }
    }

    /// Replaces the watchdog policy.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: WatchdogPolicy) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Caps the number of new epochs this invocation may complete
    /// (preemption quantum). The run aborts resumably once the cap is hit.
    #[must_use]
    pub fn with_epoch_budget(mut self, epochs: usize) -> Self {
        self.epoch_budget = Some(epochs);
        self
    }
}

/// Why a durable run gave up cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// Consecutive attempts at one epoch all blew the watchdog deadline
    /// (e.g. a permanently hung chip link).
    QueryDeadline {
        /// The epoch that could not be completed.
        epoch: usize,
        /// Timed-out attempts, including the final one.
        timeouts: u32,
    },
    /// The invocation's [`DurableOptions::epoch_budget`] ran out with
    /// epochs still to go. Always resumable: the journal holds every
    /// epoch completed so far.
    Preempted {
        /// The first epoch this invocation did *not* run.
        epoch: usize,
    },
}

/// The result of a durable run: either a finished [`TrainOutcome`] or a
/// clean, resumable abort with the journal flushed through the last
/// completed epoch.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run finished all epochs.
    Completed(TrainOutcome),
    /// The run gave up cleanly before finishing.
    Aborted {
        /// Whether [`Trainer::resume`] can pick the run back up. Always
        /// `true` for watchdog aborts: the journal holds every completed
        /// epoch.
        resumable: bool,
        /// Stage-2 epochs completed (and journaled) before the abort.
        epochs_completed: usize,
        /// What went wrong.
        reason: AbortReason,
    },
}

impl RunOutcome {
    /// The completed outcome, if the run finished.
    pub fn completed(self) -> Option<TrainOutcome> {
        match self {
            RunOutcome::Completed(outcome) => Some(outcome),
            RunOutcome::Aborted { .. } => None,
        }
    }

    /// `true` when the run aborted before finishing.
    pub fn is_aborted(&self) -> bool {
        matches!(self, RunOutcome::Aborted { .. })
    }
}

/// Immutable per-run context shared by every stage-2 epoch.
#[derive(Debug)]
struct FinetuneCtx {
    method: Method,
    zo: ZoSettings,
    lcng_settings: LcngSettings,
    rp: RecoveryPolicy,
    robust_eval: RobustEval,
    pool: ExecPool,
    serial: ExecPool,
    start: Instant,
}

/// The complete loop-carried state of stage-2 training. The legacy
/// [`Trainer::finetune`] threads one instance through all epochs; the
/// durable path rebuilds it from the journaled [`RunState`] at every epoch
/// boundary, which is what forces each epoch to be a pure function of
/// `(RunState, epoch seed)` — the property the resume contract rests on.
#[derive(Debug)]
struct FinetuneState {
    metric_model: Option<Network>,
    /// Error assignment of an adopted auto-recalibration, so a resumed run
    /// can rebuild the same replacement metric model.
    metric_errors: Option<ErrorVector>,
    loss_ema: Option<f64>,
    snapshot: Option<(RVector, Adam, Option<CmaEs>)>,
    rollbacks_used: usize,
    adam: Adam,
    cma: Option<CmaEs>,
    preconditioner: Option<BlockNaturalPreconditioner>,
    sigma_segments: Option<Vec<(usize, photon_linalg::RCholesky)>>,
    iteration: usize,
    coord_offset: usize,
    eval_queries: u64,
    ledger: LedgerCounts,
    total_recovery: RecoveryStats,
    recovery_events: Vec<RecoveryEvent>,
    /// Chip queries attributed to the run before the current process
    /// window (0 for a fresh run; the restored ledger total on resume).
    prior_queries: u64,
    /// The chip's monotonic query counter at the start of the current
    /// window, so per-run spend is `prior + (count - at_start)`.
    queries_at_start: u64,
}

/// Orchestrates two-stage training of one chip on one task.
///
/// Generic over the chip implementation: a plain [`FabricatedChip`] (the
/// default) or any other [`OnnChip`], such as a fault-injecting wrapper.
#[derive(Debug)]
pub struct Trainer<'a, C: OnnChip = FabricatedChip> {
    chip: &'a C,
    train: &'a Dataset,
    test: &'a Dataset,
    head: ClassificationHead,
    calibrated: Option<Network>,
}

impl<'a, C: OnnChip> Trainer<'a, C> {
    /// Creates a trainer for `chip` on the given train/test split.
    pub fn new(
        chip: &'a C,
        train: &'a Dataset,
        test: &'a Dataset,
        head: ClassificationHead,
    ) -> Self {
        Trainer {
            chip,
            train,
            test,
            head,
            calibrated: None,
        }
    }

    /// Attaches a calibrated model (required by `ModelChoice::Calibrated`
    /// and `Method::BpCalibrated`).
    pub fn with_calibrated_model(mut self, model: Network) -> Self {
        self.calibrated = Some(model);
        self
    }

    /// The classification head in use.
    pub fn head(&self) -> &ClassificationHead {
        &self.head
    }

    fn model_for(&self, choice: ModelChoice) -> Result<Network, CoreError> {
        match choice {
            ModelChoice::Ideal => Ok(ideal_model(self.chip.architecture())),
            ModelChoice::OracleTrue => Ok(self.chip.oracle_network()),
            ModelChoice::Calibrated => self.calibrated.clone().ok_or_else(|| {
                CoreError::InvalidConfig(
                    "calibrated model not attached; call with_calibrated_model".into(),
                )
            }),
        }
    }

    /// Stage 1: backprop warm start on the ideal model. Costs no chip
    /// queries.
    pub fn warm_start<R: Rng + ?Sized>(&self, config: &TrainConfig, rng: &mut R) -> RVector {
        let pool = ExecPool::with_threads(config.threads);
        let model = ideal_model(self.chip.architecture());
        let mut theta = model.init_params(rng);
        let mut adam = Adam::new(config.warm_lr);
        let mut batcher = Batcher::new(self.train.len(), config.batch_size);
        for _ in 0..config.warm_epochs {
            for batch in batcher.epoch(rng) {
                let (_, grad) = model_batch_loss_and_grad_pooled(
                    &model, self.train, &batch, &self.head, &theta, &pool,
                );
                adam.step(&mut theta, &grad);
            }
        }
        theta
    }

    /// Runs both stages for `method` and returns the outcome.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when a calibrated model is required but
    /// not attached, or an internal solve fails irrecoverably.
    pub fn train<R: Rng + ?Sized>(
        &self,
        method: Method,
        config: &TrainConfig,
        rng: &mut R,
    ) -> Result<TrainOutcome, CoreError> {
        let mut theta = self.warm_start(config, rng);
        self.finetune(method, config, &mut theta, rng)
    }

    /// Runs only stage 2 from the given parameters (shared warm starts let
    /// experiments compare methods from identical initial conditions).
    ///
    /// # Errors
    ///
    /// Same as [`Trainer::train`].
    pub fn finetune<R: Rng + ?Sized>(
        &self,
        method: Method,
        config: &TrainConfig,
        theta: &mut RVector,
        rng: &mut R,
    ) -> Result<TrainOutcome, CoreError> {
        let trace = &config.trace;
        let start_queries = self.chip.query_count();
        let cache_start = self.chip.cache_stats();
        let mut history = Vec::with_capacity(config.epochs);
        trace.emit(|| TraceEvent::RunStart {
            method: method.label(),
            epochs: config.epochs as u64,
            batch_size: config.batch_size as u64,
            probes: config.q as u64,
            kernel: photon_linalg::kernel_tier().name().to_string(),
        });

        let ctx = self.finetune_ctx(method, config, theta.len());
        let mut st = self.initial_finetune_state(method, config, theta, start_queries)?;
        let mut batcher = Batcher::new(self.train.len(), config.batch_size);
        for epoch in 1..=config.epochs {
            let record = self.run_epoch(epoch, config, &ctx, &mut st, theta, &mut batcher, rng)?;
            history.push(record);
        }

        let theta_final = theta.clone();
        self.finish_run(config, &ctx, st, history, theta_final, start_queries, cache_start)
    }

    /// Starts a durable (journaled, resumable) run: warm start from the
    /// root seed's "epoch 0" stream, then stage-2 epochs with the full
    /// loop-carried state appended to the run journal after every epoch.
    ///
    /// The run is a deterministic function of `(method, config,
    /// opts.root_seed)` at any worker-pool size: killing the process at any
    /// instant and calling [`Trainer::resume`] yields bitwise-identical
    /// final parameters, history, and query ledger. Each epoch's chip
    /// queries run under the watchdog in `opts`; a permanently hung chip
    /// link degrades to a clean [`RunOutcome::Aborted`] with
    /// `resumable: true` and the journal flushed through the last
    /// completed epoch.
    ///
    /// # Errors
    ///
    /// [`CoreError::Journal`] when the journal cannot be created or
    /// written; otherwise as [`Trainer::train`].
    pub fn train_durable(
        &self,
        method: Method,
        config: &TrainConfig,
        opts: &DurableOptions,
    ) -> Result<RunOutcome, CoreError> {
        let mut rng = StdRng::seed_from_u64(epoch_seed(opts.root_seed, 0));
        let theta = self.warm_start(config, &mut rng);
        let header = JournalHeader {
            method,
            root_seed: opts.root_seed,
            epochs: config.epochs,
            batch_size: config.batch_size,
            q: config.q,
        };
        let journal = RunJournal::create(&opts.journal_path, &header)?;
        let state = self.initial_run_state(method, config, &theta);
        self.durable_loop(method, config, opts, journal, state, Vec::new())
    }

    /// Starts a durable run from caller-supplied parameters, skipping the
    /// warm start entirely — the fine-tune primitive of online
    /// recalibration, where the shadow run continues from the *deployed*
    /// theta rather than a fresh random draw.
    ///
    /// Identical to [`Trainer::train_durable`] otherwise: same journal
    /// format, same epoch streams derived from `opts.root_seed`, same
    /// determinism contract. One caveat for resumption: a journal with
    /// zero landed epochs cannot reconstruct `theta` (the file does not
    /// record it), so [`Trainer::resume`] would redo the *warm start*
    /// instead. Callers must treat an empty journal as "not started" and
    /// call this method again with the same `theta` — which is exactly
    /// what the online controller does, since the deployed theta is part
    /// of its own write-ahead state.
    ///
    /// # Errors
    ///
    /// As [`Trainer::train_durable`].
    pub fn train_durable_from(
        &self,
        method: Method,
        config: &TrainConfig,
        opts: &DurableOptions,
        theta: &RVector,
    ) -> Result<RunOutcome, CoreError> {
        let header = JournalHeader {
            method,
            root_seed: opts.root_seed,
            epochs: config.epochs,
            batch_size: config.batch_size,
            q: config.q,
        };
        let journal = RunJournal::create(&opts.journal_path, &header)?;
        let state = self.initial_run_state(method, config, theta);
        self.durable_loop(method, config, opts, journal, state, Vec::new())
    }

    /// Resumes a durable run from its journal: replays the log (truncating
    /// any torn tail), restores the last journaled [`RunState`], re-derives
    /// the next epoch's RNG stream from the root seed, and continues
    /// exactly where the run left off.
    ///
    /// The method is taken from the journal header. `config` and `opts`
    /// must match the original run; `root_seed`, `epochs`, `batch_size`
    /// and `q` are verified against the header.
    ///
    /// # Errors
    ///
    /// [`CoreError::Journal`] when the file is unreadable or not a
    /// journal; [`CoreError::InvalidConfig`] when the header contradicts
    /// the caller's configuration.
    pub fn resume(
        &self,
        config: &TrainConfig,
        opts: &DurableOptions,
    ) -> Result<RunOutcome, CoreError> {
        let Replay {
            header,
            entries,
            truncated_bytes,
        } = RunJournal::replay(&opts.journal_path)?;
        if header.root_seed != opts.root_seed {
            return Err(CoreError::InvalidConfig(format!(
                "journal root seed {} does not match options root seed {}",
                header.root_seed, opts.root_seed
            )));
        }
        if header.epochs != config.epochs
            || header.batch_size != config.batch_size
            || header.q != config.q
        {
            return Err(CoreError::InvalidConfig(format!(
                "journal run shape (epochs {}, batch {}, q {}) does not match \
                 config (epochs {}, batch {}, q {})",
                header.epochs,
                header.batch_size,
                header.q,
                config.epochs,
                config.batch_size,
                config.q
            )));
        }
        let method = header.method;
        config.trace.emit(|| TraceEvent::Resume {
            epoch: entries.last().map_or(0, |e| e.state.epoch) as u64,
            records_replayed: entries.len() as u64,
            truncated_bytes,
        });
        let history: Vec<EpochRecord> = entries.iter().map(|e| e.record).collect();
        let state = match entries.into_iter().next_back() {
            Some(entry) => entry.state,
            None => {
                // Killed before the first epoch landed: redo the warm start
                // from the root seed's "epoch 0" stream.
                let mut rng = StdRng::seed_from_u64(epoch_seed(opts.root_seed, 0));
                let theta = self.warm_start(config, &mut rng);
                self.initial_run_state(method, config, &theta)
            }
        };
        let journal = RunJournal::open_append(&opts.journal_path)?;
        self.durable_loop(method, config, opts, journal, state, history)
    }

    /// The durable epoch loop shared by [`Trainer::train_durable`] and
    /// [`Trainer::resume`]: rebuild the live state from the canonical
    /// [`RunState`], run one epoch under the watchdog, journal the result.
    fn durable_loop(
        &self,
        method: Method,
        config: &TrainConfig,
        opts: &DurableOptions,
        mut journal: RunJournal,
        mut state: RunState,
        mut history: Vec<EpochRecord>,
    ) -> Result<RunOutcome, CoreError> {
        let trace = &config.trace;
        let cache_start = self.chip.cache_stats();
        trace.emit(|| TraceEvent::RunStart {
            method: method.label(),
            epochs: config.epochs as u64,
            batch_size: config.batch_size as u64,
            probes: config.q as u64,
            kernel: photon_linalg::kernel_tier().name().to_string(),
        });
        let ctx = self.finetune_ctx(method, config, state.theta.len());
        let backoff = opts.watchdog.backoff();
        let first_epoch = state.epoch + 1;
        let budget_limit = opts
            .epoch_budget
            .map(|b| state.epoch.saturating_add(b));
        for epoch in first_epoch..=config.epochs {
            if let Some(limit) = budget_limit {
                if epoch > limit {
                    // Preemption quantum exhausted: stop cleanly at the
                    // epoch boundary. Everything completed is journaled, so
                    // resume (on any worker) continues bitwise identically.
                    trace.flush();
                    return Ok(RunOutcome::Aborted {
                        resumable: true,
                        epochs_completed: state.epoch,
                        reason: AbortReason::Preempted { epoch },
                    });
                }
            }
            let mut timeouts: u32 = 0;
            loop {
                // Each attempt starts from the canonical journaled state: a
                // timed-out attempt is discarded wholesale, so partial
                // (possibly poisoned) progress can never leak into the run.
                let mut theta = state.theta.clone();
                let mut st = self.durable_state(method, &state)?;
                st.queries_at_start = self.chip.query_count();
                let mut batcher = Batcher::new(self.train.len(), config.batch_size);
                let mut rng = StdRng::seed_from_u64(epoch_seed(opts.root_seed, epoch));
                let flag = self.chip.abort_flag();
                let cancel = flag.clone();
                let (result, fired) = run_guarded(
                    opts.watchdog.deadline,
                    move || cancel.raise(),
                    || {
                        self.run_epoch(
                            epoch,
                            config,
                            &ctx,
                            &mut st,
                            &mut theta,
                            &mut batcher,
                            &mut rng,
                        )
                    },
                );
                if fired {
                    // The raised flag unblocked the hung query; lower it so
                    // the retry (or a later run) measures normally again.
                    flag.clear();
                    timeouts += 1;
                    if timeouts > opts.watchdog.max_timeouts {
                        trace.flush();
                        return Ok(RunOutcome::Aborted {
                            resumable: true,
                            epochs_completed: state.epoch,
                            reason: AbortReason::QueryDeadline { epoch, timeouts },
                        });
                    }
                    std::thread::sleep(backoff.delay(timeouts));
                    continue;
                }
                let record = result?;
                let entry = EpochEntry {
                    state: run_state_after(epoch, &st, &theta),
                    record,
                };
                let bytes = journal.append_epoch(&entry)?;
                let records = journal.records();
                trace.emit(|| TraceEvent::JournalFlush {
                    epoch: epoch as u64,
                    records,
                    bytes,
                });
                history.push(entry.record);
                state = entry.state;
                break;
            }
        }

        let mut st = self.durable_state(method, &state)?;
        st.queries_at_start = self.chip.query_count();
        let window_start = st.queries_at_start;
        let outcome = self.finish_run(
            config,
            &ctx,
            st,
            history,
            state.theta.clone(),
            window_start,
            cache_start,
        )?;
        Ok(RunOutcome::Completed(outcome))
    }

    /// The immutable per-run context (thread pools, estimator settings).
    fn finetune_ctx(&self, method: Method, config: &TrainConfig, n: usize) -> FinetuneCtx {
        // Outer-level parallelism: probes / population members / batch samples
        // fan out across `pool`; the per-probe batch loss stays serial so each
        // worker owns exactly one scratch arena (no nested pools). Inside a
        // probe, `chip_batch_loss_pooled` evaluates the batch in compiled
        // blocks — one cached-unitary GEMM per block instead of an
        // interpreted op walk per sample — so every ZO/LCNG/robust probe and
        // CMA-ES population member amortizes its compile over the batch.
        let pool = if config.trace.is_enabled() {
            // Instrumentation is telemetry-only (relaxed counters on the
            // side); an instrumented pool schedules and computes exactly
            // like a plain one.
            ExecPool::with_threads(config.threads).instrumented()
        } else {
            ExecPool::with_threads(config.threads)
        };
        let zo = ZoSettings {
            q: config.q,
            mu: config.mu_override.unwrap_or(1e-3 / (n as f64).sqrt()),
            lambda: 1.0 / n as f64,
        };
        let rp = config.recovery;
        FinetuneCtx {
            method,
            zo,
            lcng_settings: LcngSettings {
                zo,
                ridge: config.ridge,
            },
            rp,
            robust_eval: RobustEval {
                max_retries: rp.max_retries,
                outlier_zscore: rp.outlier_zscore,
                rereads: rp.rereads,
            },
            pool,
            serial: ExecPool::serial(),
            start: Instant::now(),
        }
    }

    /// The fresh loop-carried state a legacy fine-tune starts from.
    fn initial_finetune_state(
        &self,
        method: Method,
        config: &TrainConfig,
        theta: &RVector,
        queries_at_start: u64,
    ) -> Result<FinetuneState, CoreError> {
        let metric_model = match method {
            Method::ZoShaped { model } | Method::ZoNg { model } | Method::Lcng { model } => {
                Some(self.model_for(model)?)
            }
            Method::BpCalibrated => Some(self.model_for(ModelChoice::Calibrated)?),
            Method::BpIdeal => Some(self.model_for(ModelChoice::Ideal)?),
            Method::BpOracle => Some(self.model_for(ModelChoice::OracleTrue)?),
            _ => None,
        };
        Ok(FinetuneState {
            metric_model,
            metric_errors: None,
            loss_ema: None,
            snapshot: None,
            rollbacks_used: 0,
            adam: Adam::new(config.lr),
            cma: match method {
                Method::Cma { sigma0 } => Some(CmaEs::new(theta, sigma0)),
                _ => None,
            },
            preconditioner: None,
            sigma_segments: None,
            iteration: 0,
            coord_offset: 0,
            eval_queries: 0,
            ledger: LedgerCounts::new(),
            total_recovery: RecoveryStats::default(),
            recovery_events: Vec::new(),
            prior_queries: 0,
            queries_at_start,
        })
    }

    /// The epoch-0 [`RunState`] of a durable run: warm-started parameters,
    /// fresh optimizer internals, empty ledger.
    fn initial_run_state(&self, method: Method, config: &TrainConfig, theta: &RVector) -> RunState {
        RunState {
            epoch: 0,
            iteration: 0,
            coord_offset: 0,
            rollbacks_used: 0,
            loss_ema: None,
            eval_queries: 0,
            ledger: LedgerCounts::new(),
            recovery: RecoveryStats::default(),
            theta: theta.clone(),
            adam: Adam::new(config.lr).snapshot(),
            cma: match method {
                Method::Cma { sigma0 } => Some(CmaEs::new(theta, sigma0).snapshot()),
                _ => None,
            },
            rollback_snapshot: None,
            metric_errors: None,
            recovery_events: Vec::new(),
        }
    }

    /// Rebuilds the live [`FinetuneState`] from a journaled [`RunState`].
    /// Derived caches (natural-gradient preconditioner, shaped-probe
    /// covariances) are deliberately dropped — they are re-assembled from
    /// the restored state on first use, which keeps every durable epoch a
    /// pure function of `(RunState, epoch seed)`.
    fn durable_state(&self, method: Method, state: &RunState) -> Result<FinetuneState, CoreError> {
        let metric_model = if let Some(errors) = &state.metric_errors {
            // An adopted auto-recalibration replaced the metric model;
            // rebuild the same replacement from its journaled errors.
            Some(
                self.chip
                    .architecture()
                    .build_with_errors(errors)
                    .map_err(|e| {
                        CoreError::Journal(format!(
                            "journaled metric errors do not fit the architecture: {e}"
                        ))
                    })?,
            )
        } else {
            match method {
                Method::ZoShaped { model } | Method::ZoNg { model } | Method::Lcng { model } => {
                    Some(self.model_for(model)?)
                }
                Method::BpCalibrated => Some(self.model_for(ModelChoice::Calibrated)?),
                Method::BpIdeal => Some(self.model_for(ModelChoice::Ideal)?),
                Method::BpOracle => Some(self.model_for(ModelChoice::OracleTrue)?),
                _ => None,
            }
        };
        Ok(FinetuneState {
            metric_model,
            metric_errors: state.metric_errors.clone(),
            loss_ema: state.loss_ema,
            snapshot: state.rollback_snapshot.as_ref().map(|s| {
                (
                    s.theta.clone(),
                    Adam::from_state(s.adam.clone()),
                    s.cma.clone().map(CmaEs::from_state),
                )
            }),
            rollbacks_used: state.rollbacks_used,
            adam: Adam::from_state(state.adam.clone()),
            cma: state.cma.clone().map(CmaEs::from_state),
            preconditioner: None,
            sigma_segments: None,
            iteration: state.iteration,
            coord_offset: state.coord_offset,
            eval_queries: state.eval_queries,
            ledger: state.ledger,
            total_recovery: state.recovery,
            recovery_events: state.recovery_events.clone(),
            prior_queries: state.ledger.total(),
            queries_at_start: self.chip.query_count(),
        })
    }

    /// Runs one stage-2 epoch: the batch loop, the fidelity monitor, and
    /// any scheduled evaluation sweep. All loop-carried training state
    /// lives in `st`, so the legacy path (one state threaded through all
    /// epochs) and the durable path (state rebuilt from the journaled
    /// [`RunState`] at every epoch boundary) share one epoch
    /// implementation.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch<R: Rng + ?Sized>(
        &self,
        epoch: usize,
        config: &TrainConfig,
        ctx: &FinetuneCtx,
        st: &mut FinetuneState,
        theta: &mut RVector,
        batcher: &mut Batcher,
        rng: &mut R,
    ) -> Result<EpochRecord, CoreError> {
        let n = theta.len();
        let method = ctx.method;
        let trace = &config.trace;
        let pool = &ctx.pool;
        let serial = &ctx.serial;
        let zo = ctx.zo;
        let lcng_settings = ctx.lcng_settings;
        let rp = ctx.rp;
        let robust_eval = ctx.robust_eval;
        let FinetuneState {
            metric_model,
            metric_errors,
            loss_ema,
            snapshot,
            rollbacks_used,
            adam,
            cma,
            preconditioner,
            sigma_segments,
            iteration,
            coord_offset,
            eval_queries,
            ledger,
            total_recovery,
            recovery_events,
            prior_queries,
            queries_at_start,
        } = st;

        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        let mut epoch_recovery = RecoveryStats::default();
        let mut epoch_ledger = LedgerCounts::new();
        for batch in batcher.epoch(rng) {
            // One serial control point per optimizer iteration: slow
            // chip state (e.g. thermal drift on a fault-injecting chip)
            // advances here and only here, keeping every chip reading
            // within the iteration a pure function of content.
            self.chip.advance_to(*iteration as u64 + 1);
            // Pin the compiled base at the iteration's center theta (after
            // the step above, so fault-effective phases match): sparse ZO
            // probes below are then served by rank-1 incremental updates.
            self.chip.pin_compile_base(theta);

            let fisher_inputs = batch_inputs(self.train, &batch[..batch.len().min(config.r_in)]);
            let refresh = iteration.is_multiple_of(config.t_update.max(1));
            let chip = self.chip;
            let data = self.train;
            let head = self.head;
            let batch_ref = &batch;
            let serial_ref = &serial;
            let chip_loss =
                |t: &RVector| chip_batch_loss_pooled(chip, data, batch_ref, &head, t, serial_ref);

            // The base loss doubles as the divergence-guard signal for
            // every estimator that measures it.
            let needs_base = matches!(
                method,
                Method::ZoGaussian
                    | Method::ZoCoordinate
                    | Method::ZoShaped { .. }
                    | Method::ZoNg { .. }
                    | Method::ZoLc
                    | Method::Lcng { .. }
            );
            // Every chip query below happens at a serial point (the
            // pooled estimators join before returning), so attributing
            // spend by diffing the monotonic query counter is exact.
            let base_q = self.chip.query_count();
            let mut base = 0.0;
            if needs_base {
                base = chip_loss(theta);
                if rp.enabled {
                    let mut r = 0;
                    while !base.is_finite() && r < rp.max_retries {
                        base = chip_loss(theta);
                        r += 1;
                    }
                    epoch_recovery.retries += u64::from(r);
                    let threshold = loss_ema.map(|e| rp.spike_factor * e.max(1e-12));
                    let spiking = !base.is_finite() || threshold.is_some_and(|t| base > t);
                    if spiking {
                        let mut rolled_back = false;
                        if *rollbacks_used < rp.max_rollbacks {
                            if let Some((theta_good, adam_good, cma_good)) = snapshot.as_ref() {
                                theta.copy_from(theta_good);
                                *adam = adam_good.clone();
                                *cma = cma_good.clone();
                                let new_lr = adam.learning_rate() * rp.lr_backoff;
                                adam.set_learning_rate(new_lr);
                                *preconditioner = None;
                                *sigma_segments = None;
                                *rollbacks_used += 1;
                                epoch_recovery.rollbacks += 1;
                                recovery_events.push(RecoveryEvent::Rollback {
                                    epoch,
                                    iteration: *iteration,
                                    loss: base,
                                    threshold: threshold.unwrap_or(f64::INFINITY),
                                    new_lr,
                                });
                                trace.emit(|| TraceEvent::Rollback {
                                    epoch: epoch as u64,
                                    iteration: *iteration as u64,
                                    loss: base,
                                    threshold: threshold.unwrap_or(f64::INFINITY),
                                    new_lr,
                                });
                                rolled_back = true;
                            }
                        }
                        if rolled_back || !base.is_finite() {
                            // Rolled back, or no good state to return
                            // to and no finite base to estimate from:
                            // drop the batch either way. The wasted
                            // measurements still ledger as batch loss.
                            epoch_ledger.add(
                                QueryCategory::BatchLoss,
                                self.chip.query_count().saturating_sub(base_q),
                            );
                            *iteration += 1;
                            continue;
                        }
                    }
                }
                epoch_ledger.add(
                    QueryCategory::BatchLoss,
                    self.chip.query_count().saturating_sub(base_q),
                );
            }

            // Queries inside the update step are probes, except the
            // Fisher-metric refreshes, which are tracked separately:
            // they are expected to cost zero chip queries (the metric
            // comes from the calibrated software model — the paper's
            // central claim), and the ledger makes that measurable.
            let probe_q = self.chip.query_count();
            let mut fisher_q: u64 = 0;
            let loss_val = match method {
                Method::ZoGaussian
                | Method::ZoCoordinate
                | Method::ZoShaped { .. }
                | Method::ZoNg { .. } => {
                    let pert_storage;
                    let pert: Perturbation<'_> = match method {
                        Method::ZoGaussian | Method::ZoNg { .. } => Perturbation::Gaussian,
                        Method::ZoCoordinate => {
                            let p = Perturbation::Coordinate {
                                offset: *coord_offset,
                            };
                            *coord_offset = (*coord_offset + config.q) % n;
                            p
                        }
                        Method::ZoShaped { .. } => {
                            if refresh || sigma_segments.is_none() {
                                let fq = self.chip.query_count();
                                let model = metric_model.as_ref().expect("model resolved above");
                                *sigma_segments = Some(
                                    layered_sigma_segments(model, theta, &fisher_inputs, config.rho)
                                        .map_err(|e| {
                                            CoreError::InvalidConfig(format!(
                                                "sigma refresh failed: {e}"
                                            ))
                                        })?,
                                );
                                fisher_q += self.chip.query_count().saturating_sub(fq);
                            }
                            pert_storage = sigma_segments.as_ref().unwrap();
                            Perturbation::Shaped {
                                segments: pert_storage,
                            }
                        }
                        _ => unreachable!(),
                    };
                    let est = if rp.enabled {
                        let (est, stats) = estimate_gradient_robust_pooled(
                            &chip_loss,
                            theta,
                            base,
                            &zo,
                            &pert,
                            &robust_eval,
                            pool,
                            rng,
                        );
                        epoch_recovery.retries += stats.retries;
                        epoch_recovery.rejected_probes += stats.rejected + stats.unrecovered;
                        est
                    } else {
                        estimate_gradient_pooled(&chip_loss, theta, base, &zo, &pert, pool, rng)
                    };
                    let grad = if let Method::ZoNg { .. } = method {
                        if refresh || preconditioner.is_none() {
                            let fq = self.chip.query_count();
                            let model = metric_model.as_ref().expect("model resolved above");
                            *preconditioner = Some(
                                BlockNaturalPreconditioner::assemble(
                                    model,
                                    theta,
                                    &fisher_inputs,
                                    config.rho,
                                    true,
                                )
                                .map_err(|e| {
                                    CoreError::InvalidConfig(format!(
                                        "preconditioner refresh failed: {e}"
                                    ))
                                })?,
                            );
                            fisher_q += self.chip.query_count().saturating_sub(fq);
                        }
                        preconditioner.as_ref().unwrap().apply(&est.gradient)
                    } else {
                        est.gradient
                    };
                    adam.step(theta, &grad);
                    base
                }
                Method::ZoLc | Method::Lcng { .. } => {
                    let metric = match (&method, metric_model.as_ref()) {
                        (Method::ZoLc, _) => MetricSource::Identity,
                        (Method::Lcng { .. }, Some(model)) => MetricSource::Model {
                            model,
                            inputs: &fisher_inputs,
                        },
                        _ => unreachable!(),
                    };
                    let step = if rp.enabled {
                        let (step, stats) = lcng_direction_robust_pooled(
                            &chip_loss,
                            theta,
                            base,
                            &lcng_settings,
                            &Perturbation::Gaussian,
                            &metric,
                            &robust_eval,
                            pool,
                            rng,
                        )
                        .map_err(|e| {
                            CoreError::InvalidConfig(format!("LCNG solve failed: {e}"))
                        })?;
                        epoch_recovery.retries += stats.retries;
                        epoch_recovery.rejected_probes += stats.rejected + stats.unrecovered;
                        step
                    } else {
                        lcng_direction_pooled(
                            &chip_loss,
                            theta,
                            base,
                            &lcng_settings,
                            &Perturbation::Gaussian,
                            &metric,
                            pool,
                            rng,
                        )
                        .map_err(|e| CoreError::InvalidConfig(format!("LCNG solve failed: {e}")))?
                    };
                    // Feed the negative direction to Adam as a surrogate
                    // gradient (the protocol the research line uses).
                    let surrogate = step.direction.scale(-1.0);
                    adam.step(theta, &surrogate);
                    base
                }
                Method::Cma { .. } => {
                    let es = cma.as_mut().expect("initialized above");
                    let xs = es.ask(rng);
                    let mut losses: Vec<f64> = pool.map(&xs, |_, x| chip_loss(x));
                    if rp.enabled {
                        epoch_recovery.rejected_probes += penalize_non_finite(&mut losses);
                    }
                    es.tell(&xs, &losses).map_err(|e| {
                        CoreError::InvalidConfig(format!("CMA-ES update failed: {e}"))
                    })?;
                    *theta = es.mean().clone();
                    losses.iter().copied().fold(f64::INFINITY, f64::min)
                }
                Method::BpIdeal | Method::BpCalibrated | Method::BpOracle => {
                    let model = metric_model.as_ref().expect("model resolved above");
                    let (loss, grad) = model_batch_loss_and_grad_pooled(
                        model, self.train, &batch, &self.head, theta, pool,
                    );
                    adam.step(theta, &grad);
                    loss
                }
            };
            let step_spent = self.chip.query_count().saturating_sub(probe_q);
            debug_assert!(fisher_q <= step_spent);
            epoch_ledger.add(QueryCategory::Fisher, fisher_q);
            epoch_ledger.add(QueryCategory::Probe, step_spent.saturating_sub(fisher_q));
            epoch_loss += loss_val;
            batches += 1;
            if rp.enabled && needs_base && base.is_finite() {
                *loss_ema = Some(match *loss_ema {
                    None => base,
                    Some(e) => rp.ema_alpha * base + (1.0 - rp.ema_alpha) * e,
                });
                // This iteration measured sanely: its post-update state
                // becomes the rollback target.
                *snapshot = Some((theta.clone(), adam.clone(), cma.clone()));
            }
            *iteration += 1;
        }

        // Fidelity monitor: measure how faithfully the metric model
        // still reproduces the (possibly drifting) chip, and
        // recalibrate in place when it has degraded past the floor.
        if rp.enabled
            && method.queries_chip()
            && rp.fidelity_every > 0
            && epoch.is_multiple_of(rp.fidelity_every)
            && metric_model.is_some()
        {
            let before_q = self.chip.query_count();
            let report = evaluate_model(
                self.chip,
                metric_model.as_ref().expect("checked above"),
                rp.fidelity_probes.max(1),
                1,
                rng,
            );
            epoch_ledger.add(
                QueryCategory::RecoveryMonitor,
                self.chip.query_count().saturating_sub(before_q),
            );
            if report.power < rp.fidelity_threshold && rp.recalib_budget > 0 {
                let k = self.chip.input_dim();
                let calib_settings =
                    CalibrationSettings::with_query_budget(k, rp.recalib_budget.max(2 * k));
                // A failed recalibration solve is non-fatal: training
                // continues on the old model — but its measurement
                // sweep spent real queries either way, so ledger the
                // spend before inspecting the result.
                let calib_q = self.chip.query_count();
                let calib_result = calibrate(self.chip, &calib_settings, rng);
                epoch_ledger.add(
                    QueryCategory::Calibration,
                    self.chip.query_count().saturating_sub(calib_q),
                );
                if let Ok(outcome) = calib_result {
                    let monitor_q = self.chip.query_count();
                    let after =
                        evaluate_model(self.chip, &outcome.model, rp.fidelity_probes.max(1), 1, rng);
                    epoch_ledger.add(
                        QueryCategory::RecoveryMonitor,
                        self.chip.query_count().saturating_sub(monitor_q),
                    );
                    // Guarded swap: a recalibration fitted to
                    // fault-corrupted measurements can be worse than the
                    // incumbent model — adopt only on measured
                    // non-regression.
                    let adopted = after.power >= report.power;
                    if adopted {
                        // Keep the adopted error assignment so a resumed
                        // durable run rebuilds the same replacement model.
                        *metric_errors = Some(outcome.errors.clone());
                        *metric_model = Some(outcome.model);
                        *preconditioner = None;
                        *sigma_segments = None;
                    }
                    epoch_recovery.recalibrations += 1;
                    recovery_events.push(RecoveryEvent::Recalibration {
                        epoch,
                        fidelity_before: report.power,
                        fidelity_after: after.power,
                        queries: self.chip.query_count().saturating_sub(before_q),
                        adopted,
                    });
                    trace.emit(|| TraceEvent::Recalibration {
                        epoch: epoch as u64,
                        fidelity_before: report.power,
                        fidelity_after: after.power,
                        queries: self.chip.query_count().saturating_sub(before_q),
                        adopted,
                    });
                }
            }
            // Monitor + recalibration queries are bookkept alongside
            // evaluation sweeps, not training queries.
            *eval_queries += self.chip.query_count().saturating_sub(before_q);
        }

        let test = if config.eval_every > 0 && epoch.is_multiple_of(config.eval_every) {
            let before = self.chip.query_count();
            let ev = evaluate_chip_pooled(self.chip, self.test, &self.head, theta, pool);
            let spent = self.chip.query_count().saturating_sub(before);
            *eval_queries += spent;
            epoch_ledger.add(QueryCategory::Eval, spent);
            Some(ev)
        } else {
            None
        };
        total_recovery.absorb(epoch_recovery);
        ledger.absorb(&epoch_ledger);
        let train_loss = epoch_loss / batches.max(1) as f64;
        let chip_queries = self.chip.query_count();
        debug_assert!(
            chip_queries >= *queries_at_start,
            "chip query counter moved backwards"
        );
        let run_total = *prior_queries + chip_queries.saturating_sub(*queries_at_start);
        let training_queries = training_query_total(run_total, *eval_queries);
        for (category, queries) in epoch_ledger.iter() {
            if queries > 0 {
                trace.emit(|| TraceEvent::QueryLedger {
                    epoch: epoch as u64,
                    category,
                    queries,
                });
            }
        }
        trace.emit(|| TraceEvent::EpochSpan {
            epoch: epoch as u64,
            train_loss,
            test_accuracy: test.as_ref().map(|t| t.accuracy),
            test_loss: test.as_ref().map(|t| t.loss),
            learning_rate: adam.learning_rate(),
            wall_secs: ctx.start.elapsed().as_secs_f64(),
            training_queries,
        });
        Ok(EpochRecord {
            epoch,
            train_loss,
            test,
            training_queries,
            elapsed: ctx.start.elapsed().as_secs_f64(),
            recovery: epoch_recovery,
        })
    }

    /// Final evaluation, ledger reconciliation, and run-end telemetry
    /// shared by the legacy and durable paths.
    #[allow(clippy::too_many_arguments)]
    fn finish_run(
        &self,
        config: &TrainConfig,
        ctx: &FinetuneCtx,
        mut st: FinetuneState,
        history: Vec<EpochRecord>,
        theta: RVector,
        window_start: u64,
        cache_start: CacheStats,
    ) -> Result<TrainOutcome, CoreError> {
        let trace = &config.trace;
        let before = self.chip.query_count();
        let final_eval = evaluate_chip_pooled(self.chip, self.test, &self.head, &theta, &ctx.pool);
        let final_eval_spent = self.chip.query_count().saturating_sub(before);
        st.eval_queries += final_eval_spent;
        st.ledger.add(QueryCategory::Eval, final_eval_spent);
        if final_eval_spent > 0 {
            trace.emit(|| TraceEvent::QueryLedger {
                epoch: config.epochs as u64,
                category: QueryCategory::Eval,
                queries: final_eval_spent,
            });
        }

        let window_queries = self.chip.query_count().saturating_sub(window_start);
        // Reconciliation: every chip query this run spent must be attributed
        // to exactly one ledger category. A mismatch means an unledgered
        // measurement path crept in.
        debug_assert_eq!(
            st.ledger.total(),
            st.prior_queries + window_queries,
            "query ledger does not reconcile with the chip's query counter"
        );
        let run_queries = st.ledger.total();
        let training_queries = training_query_total(run_queries, st.eval_queries);
        if trace.is_enabled() {
            let cache = self.chip.cache_stats().since(cache_start);
            trace.emit(|| TraceEvent::CacheStats {
                hits: cache.hits,
                misses: cache.misses,
                invalidations: cache.invalidations,
                incremental: cache.incremental,
                forced_recompiles: cache.forced_recompiles,
            });
            if let Some(metrics) = ctx.pool.metrics() {
                let snap = metrics.snapshot();
                trace.emit(|| TraceEvent::PoolStats {
                    threads: ctx.pool.threads() as u64,
                    map_calls: snap.map_calls,
                    items: snap.items,
                    peak_worker_share_milli: snap.peak_worker_share_milli,
                });
            }
            trace.emit(|| TraceEvent::RunEnd {
                method: ctx.method.label(),
                training_queries,
                eval_queries: st.eval_queries,
                run_queries,
                chip_query_count: self.chip.query_count(),
                wall_secs: ctx.start.elapsed().as_secs_f64(),
            });
            trace.flush();
        }

        Ok(TrainOutcome {
            method: ctx.method.label(),
            history,
            final_eval,
            theta,
            training_queries,
            recovery: st.total_recovery,
            recovery_events: st.recovery_events,
        })
    }
}

/// Packs the live state after `epoch` into the journaled [`RunState`].
fn run_state_after(epoch: usize, st: &FinetuneState, theta: &RVector) -> RunState {
    RunState {
        epoch,
        iteration: st.iteration,
        coord_offset: st.coord_offset,
        rollbacks_used: st.rollbacks_used,
        loss_ema: st.loss_ema,
        eval_queries: st.eval_queries,
        ledger: st.ledger,
        recovery: st.total_recovery,
        theta: theta.clone(),
        adam: st.adam.snapshot(),
        cma: st.cma.as_ref().map(CmaEs::snapshot),
        rollback_snapshot: st.snapshot.as_ref().map(|(t, a, c)| RollbackSnapshot {
            theta: t.clone(),
            adam: a.snapshot(),
            cma: c.as_ref().map(CmaEs::snapshot),
        }),
        metric_errors: st.metric_errors.clone(),
        recovery_events: st.recovery_events.clone(),
    }
}

/// Training queries = total run spend minus evaluation-side spend, with the
/// subtraction saturating so a bookkeeping slip degrades to a clamped count
/// instead of a wrapped-around garbage value (debug builds assert instead).
fn training_query_total(run_total: u64, eval_queries: u64) -> u64 {
    debug_assert!(
        eval_queries <= run_total,
        "eval query bookkeeping exceeds the run's total chip queries"
    );
    run_total.saturating_sub(eval_queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_data::GaussianClusters;
    use photon_photonics::{Architecture, ErrorModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (FabricatedChip, Dataset, Dataset, ClassificationHead) {
        let mut rng = StdRng::seed_from_u64(seed);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let all = GaussianClusters::new(4, 4, 0.15)
            .generate(120, &mut rng)
            .unwrap();
        let (train, test) = all.split(0.75, &mut rng);
        let head = ClassificationHead::new(4, 4, 10.0).unwrap();
        (chip, train, test, head)
    }

    #[test]
    fn warm_start_reduces_model_loss() {
        let (chip, train, test, head) = setup(1);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(2);
        let config = TrainConfig::quick(4);
        let model = ideal_model(chip.architecture());
        let theta0 = model.init_params(&mut rng);
        let idx: Vec<usize> = (0..train.len()).collect();
        let loss0 = crate::metrics::model_batch_loss(&model, &train, &idx, &head, &theta0);
        let theta = trainer.warm_start(&config, &mut rng);
        let loss1 = crate::metrics::model_batch_loss(&model, &train, &idx, &head, &theta);
        assert!(loss1 < loss0, "{loss1} !< {loss0}");
    }

    #[test]
    fn zo_gaussian_trains_above_chance() {
        let (chip, train, test, head) = setup(3);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(4);
        let mut config = TrainConfig::quick(4);
        config.epochs = 8;
        let out = trainer
            .train(Method::ZoGaussian, &config, &mut rng)
            .unwrap();
        assert!(
            out.final_eval.accuracy > 0.3,
            "acc {}",
            out.final_eval.accuracy
        );
        assert!(out.training_queries > 0);
        assert_eq!(out.history.len(), 8);
        assert_eq!(out.method, "ZO-I");
    }

    #[test]
    fn lcng_with_oracle_metric_trains() {
        let (chip, train, test, head) = setup(5);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(6);
        let mut config = TrainConfig::quick(4);
        config.epochs = 8;
        let out = trainer
            .train(
                Method::Lcng {
                    model: ModelChoice::OracleTrue,
                },
                &config,
                &mut rng,
            )
            .unwrap();
        assert!(
            out.final_eval.accuracy > 0.3,
            "acc {}",
            out.final_eval.accuracy
        );
        assert_eq!(out.method, "ZO-LCNG(oracle)");
    }

    #[test]
    fn calibrated_choice_requires_attachment() {
        let (chip, train, test, head) = setup(7);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(8);
        let config = TrainConfig::quick(4);
        let err = trainer.train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        );
        assert!(err.is_err());
        // Attaching the oracle network as a stand-in fixes it.
        let trainer = trainer.with_calibrated_model(chip.oracle_network());
        let ok = trainer.train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn bp_ideal_never_queries_chip_during_training() {
        let (chip, train, test, head) = setup(9);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(10);
        let config = TrainConfig::quick(4);
        let out = trainer.train(Method::BpIdeal, &config, &mut rng).unwrap();
        assert_eq!(out.training_queries, 0);
        assert!(!Method::BpIdeal.queries_chip());
        assert!(Method::ZoGaussian.queries_chip());
    }

    #[test]
    fn bp_oracle_beats_bp_ideal_on_noisy_chip() {
        // With large fabrication errors the ideal-model gradients mislead;
        // perfect error information must win.
        let mut rng = StdRng::seed_from_u64(11);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(10.0), &mut rng);
        let all = GaussianClusters::new(4, 4, 0.15)
            .generate(160, &mut rng)
            .unwrap();
        let (train, test) = all.split(0.75, &mut rng);
        let head = ClassificationHead::new(4, 4, 10.0).unwrap();
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut config = TrainConfig::quick(4);
        config.epochs = 12;
        config.warm_epochs = 5;

        let mut rng_a = StdRng::seed_from_u64(12);
        let oracle = trainer
            .train(Method::BpOracle, &config, &mut rng_a)
            .unwrap();
        let mut rng_b = StdRng::seed_from_u64(12);
        let ideal = trainer.train(Method::BpIdeal, &config, &mut rng_b).unwrap();
        assert!(
            oracle.final_eval.loss <= ideal.final_eval.loss * 1.05,
            "oracle {} should beat ideal {}",
            oracle.final_eval.loss,
            ideal.final_eval.loss
        );
    }

    #[test]
    fn cma_trains_on_tiny_problem() {
        let (chip, train, test, head) = setup(13);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(14);
        let mut config = TrainConfig::quick(4);
        config.epochs = 3;
        let out = trainer
            .train(Method::Cma { sigma0: 0.3 }, &config, &mut rng)
            .unwrap();
        assert_eq!(out.method, "CMA");
        assert!(out.final_eval.accuracy >= 0.2);
    }

    #[test]
    fn eval_every_records_test_points() {
        let (chip, train, test, head) = setup(15);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(16);
        let mut config = TrainConfig::quick(4);
        config.epochs = 4;
        config.eval_every = 2;
        let out = trainer
            .train(Method::ZoGaussian, &config, &mut rng)
            .unwrap();
        assert!(out.history[1].test.is_some());
        assert!(out.history[0].test.is_none());
        // Training queries exclude evaluation sweeps: monotone per epoch.
        assert!(out.history[3].training_queries >= out.history[0].training_queries);
    }

    #[test]
    fn method_labels() {
        assert_eq!(Method::ZoCoordinate.label(), "ZO-co");
        assert_eq!(Method::ZoLc.label(), "ZO-LC");
        assert_eq!(
            Method::ZoNg {
                model: ModelChoice::Ideal
            }
            .label(),
            "ZO-NG(ideal)"
        );
        assert_eq!(
            Method::ZoShaped {
                model: ModelChoice::OracleTrue
            }
            .label(),
            "ZO-S(oracle)"
        );
        assert_eq!(Method::BpCalibrated.label(), "BP-calib");
    }
}
