//! The two-stage training orchestrator.
//!
//! Stage 1 (warm start): a few epochs of backpropagation on the *ideal*
//! software model — fast but systematically wrong about the fabricated
//! chip's errors.
//!
//! Stage 2 (black-box fine-tune): the compared method runs against the
//! chip, seeing only loss values. Methods:
//!
//! | label        | description |
//! |--------------|-------------|
//! | `ZO-I`       | vanilla ZO, `N(0, I)` probes, Adam |
//! | `ZO-co`      | coordinate-wise ZO probes, Adam |
//! | `ZO-Σ`       | ZO with layered covariance-shaped probes (extension) |
//! | `ZO-LC`      | linear combination, identity metric (ablation) |
//! | `ZO-NG`      | vanilla ZO + block natural-gradient preconditioning |
//! | `ZO-LCNG`    | **the paper's method**: linear combination natural gradient with a model Fisher metric |
//! | `CMA`        | CMA-ES over all parameters |
//! | `BP-ideal`   | backprop on the ideal model (never queries the chip) |
//! | `BP-calib`   | backprop on the calibrated model |
//! | `BP-oracle`  | backprop with perfect error information (upper bound) |

use std::time::Instant;

use rand::Rng;

use photon_data::{Batcher, Dataset};
use photon_exec::ExecPool;
use photon_linalg::RVector;
use photon_opt::{
    estimate_gradient_pooled, layered_sigma_segments, lcng_direction_pooled, Adam,
    BlockNaturalPreconditioner, CmaEs, LcngSettings, MetricSource, Optimizer, Perturbation,
    ZoSettings,
};
use photon_photonics::{ideal_model, FabricatedChip, Network};

use crate::loss::{ClassificationHead, CoreError};
use crate::metrics::{
    batch_inputs, chip_batch_loss_pooled, evaluate_chip_pooled, model_batch_loss_and_grad_pooled,
    Evaluation,
};

/// Which software model supplies curvature / error information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelChoice {
    /// Error-free model (no measurements needed).
    Ideal,
    /// Calibrated model attached via [`Trainer::with_calibrated_model`].
    Calibrated,
    /// Oracle model with the chip's true errors (upper-bound ablation).
    OracleTrue,
}

impl ModelChoice {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ModelChoice::Ideal => "ideal",
            ModelChoice::Calibrated => "calib",
            ModelChoice::OracleTrue => "oracle",
        }
    }
}

/// A stage-2 training method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Vanilla ZO with Gaussian probes ("ZO-I").
    ZoGaussian,
    /// Coordinate-wise ZO ("ZO-co").
    ZoCoordinate,
    /// ZO with layered covariance-shaped probes ("ZO-Σ", extension).
    ZoShaped {
        /// Metric-model source for the probe covariance.
        model: ModelChoice,
    },
    /// Linear combination with identity metric ("ZO-LC", ablation).
    ZoLc,
    /// Vanilla ZO preconditioned by block Fisher ("ZO-NG", ablation).
    ZoNg {
        /// Metric-model source for the preconditioner.
        model: ModelChoice,
    },
    /// Linear combination natural gradient ("ZO-LCNG", the paper's method).
    Lcng {
        /// Metric-model source for the Gram curvature.
        model: ModelChoice,
    },
    /// CMA-ES baseline.
    Cma {
        /// Initial global step size σ₀.
        sigma0: f64,
    },
    /// Backprop on the ideal model (never touches the chip in stage 2).
    BpIdeal,
    /// Backprop on the calibrated model.
    BpCalibrated,
    /// Backprop with perfect error information (upper bound).
    BpOracle,
}

impl Method {
    /// The label used in tables and figures.
    pub fn label(&self) -> String {
        match self {
            Method::ZoGaussian => "ZO-I".into(),
            Method::ZoCoordinate => "ZO-co".into(),
            Method::ZoShaped { model } => format!("ZO-S({})", model.label()),
            Method::ZoLc => "ZO-LC".into(),
            Method::ZoNg { model } => format!("ZO-NG({})", model.label()),
            Method::Lcng { model } => format!("ZO-LCNG({})", model.label()),
            Method::Cma { .. } => "CMA".into(),
            Method::BpIdeal => "BP-ideal".into(),
            Method::BpCalibrated => "BP-calib".into(),
            Method::BpOracle => "BP-oracle".into(),
        }
    }

    /// Whether stage 2 consumes chip queries for training.
    pub fn queries_chip(&self) -> bool {
        !matches!(
            self,
            Method::BpIdeal | Method::BpCalibrated | Method::BpOracle
        )
    }
}

/// Hyperparameters shared by the two training stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Stage-1 warm-start epochs (backprop on the ideal model).
    pub warm_epochs: usize,
    /// Stage-1 learning rate.
    pub warm_lr: f64,
    /// Stage-2 epochs.
    pub epochs: usize,
    /// Mini-batch size `B`.
    pub batch_size: usize,
    /// Probe count `Q` per ZO estimate.
    pub q: usize,
    /// Stage-2 learning rate (Adam).
    pub lr: f64,
    /// Damping `ρ` for natural-gradient blocks and shaped covariances.
    pub rho: f64,
    /// Relative ridge for the LCNG Gram solve.
    pub ridge: f64,
    /// Refresh cadence `T_ud` (iterations) of preconditioners / covariances.
    pub t_update: usize,
    /// Number of Fisher-metric input vectors `R_in` per refresh.
    pub r_in: usize,
    /// Evaluate on the test set every this many epochs (0 = only at the
    /// end).
    pub eval_every: usize,
    /// Override of the ZO smoothing step `μ` (default `1e-3/√N`). Raise it
    /// when the chip has measurement noise: quotients average the noise
    /// over a larger loss difference.
    pub mu_override: Option<f64>,
    /// Worker threads for probe / batch / Fisher / population evaluation.
    /// `None` honours `PHOTON_THREADS` (falling back to the machine's
    /// available parallelism); `Some(1)` forces exact serial execution.
    pub threads: Option<usize>,
}

impl TrainConfig {
    /// Paper-line defaults scaled to a network with `n` parameters and
    /// input dimension `k`: `B = 100`, `Q = K`, `T_ud = 100`, `ρ = 0.1`.
    pub fn for_network(n: usize, k: usize) -> Self {
        let _ = n;
        TrainConfig {
            warm_epochs: 10,
            warm_lr: 0.02,
            epochs: 100,
            batch_size: 100,
            q: k.max(2),
            lr: 0.01,
            rho: 0.1,
            ridge: 0.1,
            t_update: 100,
            r_in: 8,
            eval_every: 0,
            mu_override: None,
            threads: None,
        }
    }

    /// A fast preset for tests and examples.
    pub fn quick(k: usize) -> Self {
        TrainConfig {
            warm_epochs: 3,
            warm_lr: 0.02,
            epochs: 5,
            batch_size: 16,
            q: k.max(2),
            lr: 0.02,
            rho: 0.1,
            ridge: 0.1,
            t_update: 10,
            r_in: 4,
            eval_every: 0,
            mu_override: None,
            threads: None,
        }
    }
}

/// One epoch's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Stage-2 epoch index (1-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Test evaluation, when scheduled this epoch.
    pub test: Option<Evaluation>,
    /// Cumulative *training* chip queries at the end of the epoch
    /// (evaluation sweeps excluded).
    pub training_queries: u64,
    /// Wall-clock seconds since stage 2 started.
    pub elapsed: f64,
}

/// The result of a full two-stage run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Method label.
    pub method: String,
    /// Per-epoch records.
    pub history: Vec<EpochRecord>,
    /// Final test evaluation on the chip.
    pub final_eval: Evaluation,
    /// Final parameters.
    pub theta: RVector,
    /// Total training chip queries (stage 2, excluding evaluations).
    pub training_queries: u64,
}

/// Orchestrates two-stage training of one chip on one task.
#[derive(Debug)]
pub struct Trainer<'a> {
    chip: &'a FabricatedChip,
    train: &'a Dataset,
    test: &'a Dataset,
    head: ClassificationHead,
    calibrated: Option<Network>,
}

impl<'a> Trainer<'a> {
    /// Creates a trainer for `chip` on the given train/test split.
    pub fn new(
        chip: &'a FabricatedChip,
        train: &'a Dataset,
        test: &'a Dataset,
        head: ClassificationHead,
    ) -> Self {
        Trainer {
            chip,
            train,
            test,
            head,
            calibrated: None,
        }
    }

    /// Attaches a calibrated model (required by `ModelChoice::Calibrated`
    /// and `Method::BpCalibrated`).
    pub fn with_calibrated_model(mut self, model: Network) -> Self {
        self.calibrated = Some(model);
        self
    }

    /// The classification head in use.
    pub fn head(&self) -> &ClassificationHead {
        &self.head
    }

    fn model_for(&self, choice: ModelChoice) -> Result<Network, CoreError> {
        match choice {
            ModelChoice::Ideal => Ok(ideal_model(self.chip.architecture())),
            ModelChoice::OracleTrue => Ok(self.chip.oracle_network()),
            ModelChoice::Calibrated => self.calibrated.clone().ok_or_else(|| {
                CoreError::InvalidConfig(
                    "calibrated model not attached; call with_calibrated_model".into(),
                )
            }),
        }
    }

    /// Stage 1: backprop warm start on the ideal model. Costs no chip
    /// queries.
    pub fn warm_start<R: Rng + ?Sized>(&self, config: &TrainConfig, rng: &mut R) -> RVector {
        let pool = ExecPool::with_threads(config.threads);
        let model = ideal_model(self.chip.architecture());
        let mut theta = model.init_params(rng);
        let mut adam = Adam::new(config.warm_lr);
        let mut batcher = Batcher::new(self.train.len(), config.batch_size);
        for _ in 0..config.warm_epochs {
            for batch in batcher.epoch(rng) {
                let (_, grad) = model_batch_loss_and_grad_pooled(
                    &model, self.train, &batch, &self.head, &theta, &pool,
                );
                adam.step(&mut theta, &grad);
            }
        }
        theta
    }

    /// Runs both stages for `method` and returns the outcome.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when a calibrated model is required but
    /// not attached, or an internal solve fails irrecoverably.
    pub fn train<R: Rng + ?Sized>(
        &self,
        method: Method,
        config: &TrainConfig,
        rng: &mut R,
    ) -> Result<TrainOutcome, CoreError> {
        let mut theta = self.warm_start(config, rng);
        self.finetune(method, config, &mut theta, rng)
    }

    /// Runs only stage 2 from the given parameters (shared warm starts let
    /// experiments compare methods from identical initial conditions).
    ///
    /// # Errors
    ///
    /// Same as [`Trainer::train`].
    pub fn finetune<R: Rng + ?Sized>(
        &self,
        method: Method,
        config: &TrainConfig,
        theta: &mut RVector,
        rng: &mut R,
    ) -> Result<TrainOutcome, CoreError> {
        let n = theta.len();
        // Outer-level parallelism: probes / population members / batch samples
        // fan out across `pool`; the per-probe batch loss stays serial so each
        // worker owns exactly one scratch arena (no nested pools).
        let pool = ExecPool::with_threads(config.threads);
        let serial = ExecPool::serial();
        let start_queries = self.chip.query_count();
        let mut eval_queries: u64 = 0;
        let start = Instant::now();
        let mut history = Vec::with_capacity(config.epochs);

        let zo = ZoSettings {
            q: config.q,
            mu: config.mu_override.unwrap_or(1e-3 / (n as f64).sqrt()),
            lambda: 1.0 / n as f64,
        };
        let lcng_settings = LcngSettings {
            zo,
            ridge: config.ridge,
        };

        let metric_model = match method {
            Method::ZoShaped { model } | Method::ZoNg { model } | Method::Lcng { model } => {
                Some(self.model_for(model)?)
            }
            Method::BpCalibrated => Some(self.model_for(ModelChoice::Calibrated)?),
            Method::BpIdeal => Some(self.model_for(ModelChoice::Ideal)?),
            Method::BpOracle => Some(self.model_for(ModelChoice::OracleTrue)?),
            _ => None,
        };

        let mut adam = Adam::new(config.lr);
        let mut batcher = Batcher::new(self.train.len(), config.batch_size);
        let mut cma: Option<CmaEs> = match method {
            Method::Cma { sigma0 } => Some(CmaEs::new(theta, sigma0)),
            _ => None,
        };
        let mut preconditioner: Option<BlockNaturalPreconditioner> = None;
        let mut sigma_segments: Option<Vec<(usize, photon_linalg::RCholesky)>> = None;
        let mut iteration: usize = 0;
        let mut coord_offset: usize = 0;

        for epoch in 1..=config.epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in batcher.epoch(rng) {
                let fisher_inputs =
                    batch_inputs(self.train, &batch[..batch.len().min(config.r_in)]);
                let refresh = iteration.is_multiple_of(config.t_update.max(1));
                let chip = self.chip;
                let data = self.train;
                let head = self.head;
                let batch_ref = &batch;
                let serial_ref = &serial;
                let chip_loss =
                    |t: &RVector| chip_batch_loss_pooled(chip, data, batch_ref, &head, t, serial_ref);

                let loss_val = match method {
                    Method::ZoGaussian
                    | Method::ZoCoordinate
                    | Method::ZoShaped { .. }
                    | Method::ZoNg { .. } => {
                        let base = chip_loss(theta);
                        let pert_storage;
                        let pert: Perturbation<'_> = match method {
                            Method::ZoGaussian | Method::ZoNg { .. } => Perturbation::Gaussian,
                            Method::ZoCoordinate => {
                                let p = Perturbation::Coordinate {
                                    offset: coord_offset,
                                };
                                coord_offset = (coord_offset + config.q) % n;
                                p
                            }
                            Method::ZoShaped { .. } => {
                                if refresh || sigma_segments.is_none() {
                                    let model =
                                        metric_model.as_ref().expect("model resolved above");
                                    sigma_segments = Some(
                                        layered_sigma_segments(
                                            model,
                                            theta,
                                            &fisher_inputs,
                                            config.rho,
                                        )
                                        .map_err(|e| {
                                            CoreError::InvalidConfig(format!(
                                                "sigma refresh failed: {e}"
                                            ))
                                        })?,
                                    );
                                }
                                pert_storage = sigma_segments.as_ref().unwrap();
                                Perturbation::Shaped {
                                    segments: pert_storage,
                                }
                            }
                            _ => unreachable!(),
                        };
                        let est =
                            estimate_gradient_pooled(&chip_loss, theta, base, &zo, &pert, &pool, rng);
                        let grad = if let Method::ZoNg { .. } = method {
                            if refresh || preconditioner.is_none() {
                                let model = metric_model.as_ref().expect("model resolved above");
                                preconditioner = Some(
                                    BlockNaturalPreconditioner::assemble(
                                        model,
                                        theta,
                                        &fisher_inputs,
                                        config.rho,
                                        true,
                                    )
                                    .map_err(|e| {
                                        CoreError::InvalidConfig(format!(
                                            "preconditioner refresh failed: {e}"
                                        ))
                                    })?,
                                );
                            }
                            preconditioner.as_ref().unwrap().apply(&est.gradient)
                        } else {
                            est.gradient
                        };
                        adam.step(theta, &grad);
                        base
                    }
                    Method::ZoLc | Method::Lcng { .. } => {
                        let base = chip_loss(theta);
                        let metric = match (&method, metric_model.as_ref()) {
                            (Method::ZoLc, _) => MetricSource::Identity,
                            (Method::Lcng { .. }, Some(model)) => MetricSource::Model {
                                model,
                                inputs: &fisher_inputs,
                            },
                            _ => unreachable!(),
                        };
                        let step = lcng_direction_pooled(
                            &chip_loss,
                            theta,
                            base,
                            &lcng_settings,
                            &Perturbation::Gaussian,
                            &metric,
                            &pool,
                            rng,
                        )
                        .map_err(|e| CoreError::InvalidConfig(format!("LCNG solve failed: {e}")))?;
                        // Feed the negative direction to Adam as a surrogate
                        // gradient (the protocol the research line uses).
                        let surrogate = step.direction.scale(-1.0);
                        adam.step(theta, &surrogate);
                        base
                    }
                    Method::Cma { .. } => {
                        let es = cma.as_mut().expect("initialized above");
                        let xs = es.ask(rng);
                        let losses: Vec<f64> = pool.map(&xs, |_, x| chip_loss(x));
                        es.tell(&xs, &losses).map_err(|e| {
                            CoreError::InvalidConfig(format!("CMA-ES update failed: {e}"))
                        })?;
                        *theta = es.mean().clone();
                        losses.iter().copied().fold(f64::INFINITY, f64::min)
                    }
                    Method::BpIdeal | Method::BpCalibrated | Method::BpOracle => {
                        let model = metric_model.as_ref().expect("model resolved above");
                        let (loss, grad) = model_batch_loss_and_grad_pooled(
                            model, self.train, &batch, &self.head, theta, &pool,
                        );
                        adam.step(theta, &grad);
                        loss
                    }
                };
                epoch_loss += loss_val;
                batches += 1;
                iteration += 1;
            }

            let test = if config.eval_every > 0 && epoch % config.eval_every == 0 {
                let before = self.chip.query_count();
                let ev = evaluate_chip_pooled(self.chip, self.test, &self.head, theta, &pool);
                eval_queries += self.chip.query_count() - before;
                Some(ev)
            } else {
                None
            };
            history.push(EpochRecord {
                epoch,
                train_loss: epoch_loss / batches.max(1) as f64,
                test,
                training_queries: self.chip.query_count() - start_queries - eval_queries,
                elapsed: start.elapsed().as_secs_f64(),
            });
        }

        let before = self.chip.query_count();
        let final_eval = evaluate_chip_pooled(self.chip, self.test, &self.head, theta, &pool);
        eval_queries += self.chip.query_count() - before;

        Ok(TrainOutcome {
            method: method.label(),
            history,
            final_eval,
            theta: theta.clone(),
            training_queries: self.chip.query_count() - start_queries - eval_queries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_data::GaussianClusters;
    use photon_photonics::{Architecture, ErrorModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (FabricatedChip, Dataset, Dataset, ClassificationHead) {
        let mut rng = StdRng::seed_from_u64(seed);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(1.0), &mut rng);
        let all = GaussianClusters::new(4, 4, 0.15)
            .generate(120, &mut rng)
            .unwrap();
        let (train, test) = all.split(0.75, &mut rng);
        let head = ClassificationHead::new(4, 4, 10.0).unwrap();
        (chip, train, test, head)
    }

    #[test]
    fn warm_start_reduces_model_loss() {
        let (chip, train, test, head) = setup(1);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(2);
        let config = TrainConfig::quick(4);
        let model = ideal_model(chip.architecture());
        let theta0 = model.init_params(&mut rng);
        let idx: Vec<usize> = (0..train.len()).collect();
        let loss0 = crate::metrics::model_batch_loss(&model, &train, &idx, &head, &theta0);
        let theta = trainer.warm_start(&config, &mut rng);
        let loss1 = crate::metrics::model_batch_loss(&model, &train, &idx, &head, &theta);
        assert!(loss1 < loss0, "{loss1} !< {loss0}");
    }

    #[test]
    fn zo_gaussian_trains_above_chance() {
        let (chip, train, test, head) = setup(3);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(4);
        let mut config = TrainConfig::quick(4);
        config.epochs = 8;
        let out = trainer
            .train(Method::ZoGaussian, &config, &mut rng)
            .unwrap();
        assert!(
            out.final_eval.accuracy > 0.3,
            "acc {}",
            out.final_eval.accuracy
        );
        assert!(out.training_queries > 0);
        assert_eq!(out.history.len(), 8);
        assert_eq!(out.method, "ZO-I");
    }

    #[test]
    fn lcng_with_oracle_metric_trains() {
        let (chip, train, test, head) = setup(5);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(6);
        let mut config = TrainConfig::quick(4);
        config.epochs = 8;
        let out = trainer
            .train(
                Method::Lcng {
                    model: ModelChoice::OracleTrue,
                },
                &config,
                &mut rng,
            )
            .unwrap();
        assert!(
            out.final_eval.accuracy > 0.3,
            "acc {}",
            out.final_eval.accuracy
        );
        assert_eq!(out.method, "ZO-LCNG(oracle)");
    }

    #[test]
    fn calibrated_choice_requires_attachment() {
        let (chip, train, test, head) = setup(7);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(8);
        let config = TrainConfig::quick(4);
        let err = trainer.train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        );
        assert!(err.is_err());
        // Attaching the oracle network as a stand-in fixes it.
        let trainer = trainer.with_calibrated_model(chip.oracle_network());
        let ok = trainer.train(
            Method::Lcng {
                model: ModelChoice::Calibrated,
            },
            &config,
            &mut rng,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn bp_ideal_never_queries_chip_during_training() {
        let (chip, train, test, head) = setup(9);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(10);
        let config = TrainConfig::quick(4);
        let out = trainer.train(Method::BpIdeal, &config, &mut rng).unwrap();
        assert_eq!(out.training_queries, 0);
        assert!(!Method::BpIdeal.queries_chip());
        assert!(Method::ZoGaussian.queries_chip());
    }

    #[test]
    fn bp_oracle_beats_bp_ideal_on_noisy_chip() {
        // With large fabrication errors the ideal-model gradients mislead;
        // perfect error information must win.
        let mut rng = StdRng::seed_from_u64(11);
        let arch = Architecture::single_mesh(4, 4).unwrap();
        let chip = FabricatedChip::fabricate(&arch, &ErrorModel::with_beta(10.0), &mut rng);
        let all = GaussianClusters::new(4, 4, 0.15)
            .generate(160, &mut rng)
            .unwrap();
        let (train, test) = all.split(0.75, &mut rng);
        let head = ClassificationHead::new(4, 4, 10.0).unwrap();
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut config = TrainConfig::quick(4);
        config.epochs = 12;
        config.warm_epochs = 5;

        let mut rng_a = StdRng::seed_from_u64(12);
        let oracle = trainer
            .train(Method::BpOracle, &config, &mut rng_a)
            .unwrap();
        let mut rng_b = StdRng::seed_from_u64(12);
        let ideal = trainer.train(Method::BpIdeal, &config, &mut rng_b).unwrap();
        assert!(
            oracle.final_eval.loss <= ideal.final_eval.loss * 1.05,
            "oracle {} should beat ideal {}",
            oracle.final_eval.loss,
            ideal.final_eval.loss
        );
    }

    #[test]
    fn cma_trains_on_tiny_problem() {
        let (chip, train, test, head) = setup(13);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(14);
        let mut config = TrainConfig::quick(4);
        config.epochs = 3;
        let out = trainer
            .train(Method::Cma { sigma0: 0.3 }, &config, &mut rng)
            .unwrap();
        assert_eq!(out.method, "CMA");
        assert!(out.final_eval.accuracy >= 0.2);
    }

    #[test]
    fn eval_every_records_test_points() {
        let (chip, train, test, head) = setup(15);
        let trainer = Trainer::new(&chip, &train, &test, head);
        let mut rng = StdRng::seed_from_u64(16);
        let mut config = TrainConfig::quick(4);
        config.epochs = 4;
        config.eval_every = 2;
        let out = trainer
            .train(Method::ZoGaussian, &config, &mut rng)
            .unwrap();
        assert!(out.history[1].test.is_some());
        assert!(out.history[0].test.is_none());
        // Training queries exclude evaluation sweeps: monotone per epoch.
        assert!(out.history[3].training_queries >= out.history[0].training_queries);
    }

    #[test]
    fn method_labels() {
        assert_eq!(Method::ZoCoordinate.label(), "ZO-co");
        assert_eq!(Method::ZoLc.label(), "ZO-LC");
        assert_eq!(
            Method::ZoNg {
                model: ModelChoice::Ideal
            }
            .label(),
            "ZO-NG(ideal)"
        );
        assert_eq!(
            Method::ZoShaped {
                model: ModelChoice::OracleTrue
            }
            .label(),
            "ZO-S(oracle)"
        );
        assert_eq!(Method::BpCalibrated.label(), "BP-calib");
    }
}
