//! The serving report: per-tenant tail latencies, throughput, and overload
//! accounting, with deterministic text and JSON renderings.
//!
//! Both renderings are pure functions of the simulation state — no
//! timestamps, no host names, no float formatting that could vary between
//! runs — so "same seed ⇒ byte-identical report" is checkable with `cmp`.

use photon_core::percentiles;
use photon_trace::{TraceEvent, TraceHandle};

/// Latency/throughput summary for one tenant (or the `"all"` aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantServingStats {
    /// Tenant name, `"all"` for the aggregate row.
    pub tenant: String,
    /// Requests that arrived inside the arrival window.
    pub arrivals: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Requests dropped at drain time because their deadline had already
    /// passed — serving them would have wasted chip time on answers the
    /// caller abandoned.
    pub expired: u64,
    /// Median completion latency, virtual ns (NaN when nothing completed).
    pub p50_ns: f64,
    /// 99th-percentile latency, virtual ns.
    pub p99_ns: f64,
    /// 99.9th-percentile latency, virtual ns.
    pub p999_ns: f64,
    /// Mean latency, virtual ns.
    pub mean_ns: f64,
    /// Completed requests per second of makespan.
    pub throughput_rps: f64,
    /// High-water queue depth.
    pub peak_queue_depth: u64,
}

impl TenantServingStats {
    /// Builds one row from raw completion latencies.
    #[allow(clippy::too_many_arguments)]
    pub fn from_samples(
        tenant: &str,
        arrivals: u64,
        completed: u64,
        shed: u64,
        expired: u64,
        peak_queue_depth: u64,
        latencies_ns: &[f64],
        makespan_ns: u64,
    ) -> Self {
        let (p50_ns, p99_ns, p999_ns, mean_ns) = if latencies_ns.is_empty() {
            (f64::NAN, f64::NAN, f64::NAN, f64::NAN)
        } else {
            let q = percentiles(latencies_ns, &[0.5, 0.99, 0.999]);
            let mean = latencies_ns.iter().sum::<f64>() / latencies_ns.len() as f64;
            (q[0], q[1], q[2], mean)
        };
        TenantServingStats {
            tenant: tenant.to_string(),
            arrivals,
            completed,
            shed,
            expired,
            p50_ns,
            p99_ns,
            p999_ns,
            mean_ns,
            throughput_rps: completed as f64 / (makespan_ns as f64 / 1e9),
            peak_queue_depth,
        }
    }

    /// The matching [`TraceEvent::ServingStats`] record.
    pub fn to_event(&self, mean_batch: f64) -> TraceEvent {
        TraceEvent::ServingStats {
            tenant: self.tenant.clone(),
            arrivals: self.arrivals,
            completed: self.completed,
            shed: self.shed,
            p50_ns: self.p50_ns,
            p99_ns: self.p99_ns,
            p999_ns: self.p999_ns,
            throughput_rps: self.throughput_rps,
            peak_queue_depth: self.peak_queue_depth,
            mean_batch,
        }
    }
}

/// Complete result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Config label.
    pub label: String,
    /// Root seed the run derived every stream from.
    pub root_seed: u64,
    /// Arrival window, virtual ns.
    pub duration_ns: u64,
    /// Virtual time of the last completion (the drain may outlive the
    /// arrival window under overload).
    pub makespan_ns: u64,
    /// Worker slots.
    pub workers: usize,
    /// Coalescer batch bound.
    pub max_batch: usize,
    /// Coalescer flush deadline, virtual ns.
    pub max_wait_ns: u64,
    /// Per-tenant rows, in tenant order.
    pub tenants: Vec<TenantServingStats>,
    /// The all-tenants aggregate row.
    pub aggregate: TenantServingStats,
    /// Coalesced dispatches executed.
    pub batches: u64,
    /// Mean requests per dispatch (NaN when nothing dispatched).
    pub mean_batch: f64,
    /// Dispatches struck by a fault-induced hang.
    pub hangs: u64,
    /// Background recalibration passes served.
    pub recals: u64,
    /// Piggybacked calibration probes served (dispatched only into idle
    /// microbatch slots, budgeted per window).
    pub probes: u64,
    /// Canary comparison batches served.
    pub canaries: u64,
    /// Chip queries spent when the run drove a real chip
    /// ([`crate::run_on_chip`]); `None` for model-only runs. Must equal
    /// [`ServingReport::aggregate`]`.completed` — asserted in tests.
    pub chip_queries: Option<u64>,
}

/// Formats an f64 with fixed precision for the text table (NaN → `-`).
pub(crate) fn fx(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "-".to_string()
    }
}

/// JSON number: non-finite → null (JSON has no NaN).
pub(crate) fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One tenant row as a deterministic JSON object (shared by both report
/// types).
pub(crate) fn tenant_row_json(r: &TenantServingStats) -> String {
    format!(
        "{{\"tenant\":{},\"arrivals\":{},\"completed\":{},\"shed\":{},\"expired\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"mean_ns\":{},\"throughput_rps\":{},\"peak_queue_depth\":{}}}",
        jstr(&r.tenant),
        r.arrivals,
        r.completed,
        r.shed,
        r.expired,
        jf(r.p50_ns),
        jf(r.p99_ns),
        jf(r.p999_ns),
        jf(r.mean_ns),
        jf(r.throughput_rps),
        r.peak_queue_depth,
    )
}

impl ServingReport {
    /// Deterministic plain-text rendering (latencies in microseconds).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serving sim [{}] seed {}: {} worker(s), batch<={}, max wait {} us",
            if self.label.is_empty() { "unlabeled" } else { &self.label },
            self.root_seed,
            self.workers,
            self.max_batch,
            self.max_wait_ns / 1_000,
        );
        let _ = writeln!(
            out,
            "  window {} ms, makespan {} ms, {} dispatches (mean batch {}), {} hangs, {} recals, {} probes, {} canaries",
            fx(self.duration_ns as f64 / 1e6, 3),
            fx(self.makespan_ns as f64 / 1e6, 3),
            self.batches,
            fx(self.mean_batch, 2),
            self.hangs,
            self.recals,
            self.probes,
            self.canaries,
        );
        if let Some(q) = self.chip_queries {
            let _ = writeln!(out, "  chip queries {q} (reconciled against completions)");
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>9} {:>9} {:>7} {:>7} {:>10} {:>10} {:>10} {:>11} {:>6}",
            "tenant", "arrivals", "done", "shed", "expired", "p50us", "p99us", "p999us", "rps", "peakq"
        );
        for row in self.tenants.iter().chain([&self.aggregate]) {
            let _ = writeln!(
                out,
                "  {:<10} {:>9} {:>9} {:>7} {:>7} {:>10} {:>10} {:>10} {:>11} {:>6}",
                row.tenant,
                row.arrivals,
                row.completed,
                row.shed,
                row.expired,
                fx(row.p50_ns / 1e3, 1),
                fx(row.p99_ns / 1e3, 1),
                fx(row.p999_ns / 1e3, 1),
                fx(row.throughput_rps, 0),
                row.peak_queue_depth,
            );
        }
        out
    }

    /// Deterministic JSON rendering (one object, latencies in ns).
    pub fn to_json(&self) -> String {
        let row = tenant_row_json;
        let tenants: Vec<String> = self.tenants.iter().map(row).collect();
        format!(
            "{{\"label\":{},\"root_seed\":{},\"duration_ns\":{},\"makespan_ns\":{},\"workers\":{},\"max_batch\":{},\"max_wait_ns\":{},\"batches\":{},\"mean_batch\":{},\"hangs\":{},\"recals\":{},\"probes\":{},\"canaries\":{},\"chip_queries\":{},\"tenants\":[{}],\"aggregate\":{}}}",
            jstr(&self.label),
            self.root_seed,
            self.duration_ns,
            self.makespan_ns,
            self.workers,
            self.max_batch,
            self.max_wait_ns,
            self.batches,
            jf(self.mean_batch),
            self.hangs,
            self.recals,
            self.probes,
            self.canaries,
            match self.chip_queries {
                Some(q) => q.to_string(),
                None => "null".to_string(),
            },
            tenants.join(","),
            row(&self.aggregate),
        )
    }

    /// Emits one [`TraceEvent::ServingStats`] per tenant row plus the
    /// aggregate, then flushes the sink.
    pub fn emit(&self, trace: &TraceHandle) {
        for t in self.tenants.iter().chain([&self.aggregate]) {
            trace.emit(|| t.to_event(self.mean_batch));
        }
        trace.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> TenantServingStats {
        TenantServingStats::from_samples(
            "t",
            100,
            90,
            8,
            2,
            12,
            &(1..=90).map(|i| i as f64 * 1_000.0).collect::<Vec<_>>(),
            1_000_000_000,
        )
    }

    #[test]
    fn from_samples_uses_shared_percentiles() {
        let s = stats();
        // 90 samples of 1k..90k ns: median interpolates to 45.5k.
        assert!((s.p50_ns - 45_500.0).abs() < 1e-9, "{}", s.p50_ns);
        assert!(s.p99_ns > s.p50_ns && s.p999_ns >= s.p99_ns);
        assert!((s.throughput_rps - 90.0).abs() < 1e-9);
    }

    #[test]
    fn empty_latencies_are_nan_not_panic() {
        let s = TenantServingStats::from_samples("idle", 0, 0, 0, 0, 0, &[], 1_000);
        assert!(s.p50_ns.is_nan() && s.p999_ns.is_nan() && s.mean_ns.is_nan());
        assert_eq!(s.throughput_rps, 0.0);
    }

    #[test]
    fn report_renderings_are_deterministic_and_nan_safe() {
        let report = ServingReport {
            label: "unit".into(),
            root_seed: 7,
            duration_ns: 1_000_000,
            makespan_ns: 1_100_000,
            workers: 2,
            max_batch: 16,
            max_wait_ns: 50_000,
            tenants: vec![stats()],
            aggregate: TenantServingStats::from_samples("all", 0, 0, 0, 0, 0, &[], 1_000),
            batches: 12,
            mean_batch: 7.5,
            hangs: 0,
            recals: 2,
            probes: 5,
            canaries: 1,
            chip_queries: Some(90),
        };
        assert_eq!(report.render(), report.render());
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert!(json.contains("\"chip_queries\":90"));
        assert!(json.contains("\"probes\":5,\"canaries\":1"));
        assert!(json.contains("\"shed\":8,\"expired\":2"));
        assert!(report.render().contains("expired"));
        assert!(report.render().contains("5 probes, 1 canaries"));
        assert!(json.contains("\"p50_ns\":null"), "NaN must become null");
        assert!(json.contains("\"tenants\":[{\"tenant\":\"t\""));
        assert!(report.render().contains("chip queries 90"));
        // NaN rows render as '-' placeholders, not 'NaN'.
        assert!(report.render().contains('-'));
        assert!(!report.render().contains("NaN"));
    }

    #[test]
    fn emit_produces_one_event_per_row() {
        let (handle, mem) = TraceHandle::memory(0);
        let report = ServingReport {
            label: String::new(),
            root_seed: 1,
            duration_ns: 10,
            makespan_ns: 10,
            workers: 1,
            max_batch: 1,
            max_wait_ns: 0,
            tenants: vec![stats(), stats()],
            aggregate: stats(),
            batches: 1,
            mean_batch: 1.0,
            hangs: 0,
            recals: 0,
            probes: 0,
            canaries: 0,
            chip_queries: None,
        };
        report.emit(&handle);
        let events = mem.events();
        assert_eq!(events.len(), 3, "two tenants + aggregate");
        assert!(events.iter().all(|e| e.kind() == "serving_stats"));
    }
}
