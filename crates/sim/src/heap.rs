//! The event heap: a binary min-heap over virtual nanoseconds.
//!
//! Events are ordered by `(at_ns, seq)` where `seq` is a monotonically
//! assigned scheduling sequence number. The tie-break matters: two events
//! scheduled for the same virtual instant pop in the order they were
//! scheduled, so the simulation's behaviour is a pure function of its
//! inputs — never of hash order, allocator state, or comparison
//! instability.

use std::collections::BinaryHeap;

/// One scheduled event.
#[derive(Debug)]
struct Entry<T> {
    at_ns: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ns == other.at_ns && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so `BinaryHeap` (a max-heap) pops the *earliest*
        // (at_ns, seq) first.
        (other.at_ns, other.seq).cmp(&(self.at_ns, self.seq))
    }
}

/// Deterministic discrete-event queue keyed on virtual nanoseconds.
#[derive(Debug)]
pub struct EventHeap<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        EventHeap::new()
    }
}

impl<T> EventHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        EventHeap {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at virtual time `at_ns`; returns the sequence
    /// number assigned (total scheduling order, used for tie-breaks).
    pub fn schedule(&mut self, at_ns: u64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at_ns,
            seq,
            payload,
        });
        seq
    }

    /// Pops the earliest event as `(at_ns, seq, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.heap.pop().map(|e| (e.at_ns, e.seq, e.payload))
    }

    /// Virtual time of the next event, if any.
    pub fn peek_at(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.at_ns)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.schedule(30, "c");
        h.schedule(10, "a");
        h.schedule(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| h.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut h = EventHeap::new();
        for i in 0..100u64 {
            h.schedule(7, i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| h.pop().map(|(_, _, p)| p)).collect();
        let expected: Vec<u64> = (0..100).collect();
        assert_eq!(order, expected, "same-instant events pop FIFO");
    }

    #[test]
    fn peek_and_len() {
        let mut h = EventHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.peek_at(), None);
        h.schedule(5, ());
        h.schedule(3, ());
        assert_eq!(h.len(), 2);
        assert_eq!(h.peek_at(), Some(3));
        let (at, seq, ()) = h.pop().unwrap();
        assert_eq!((at, seq), (3, 1));
        assert_eq!(h.peek_at(), Some(5));
    }
}
