//! The resilient replica-group simulator: circuit breakers, hedged
//! requests, deadline propagation, and tiered brownout on top of the
//! discrete-event core.
//!
//! Where the base simulator (`crate::sim`) models interchangeable worker
//! slots, this module models a **replica group**: `N` chips pinned to the
//! same deployment theta behind one logical endpoint, each with its own
//! failure modes ([`ReplicaChaos`]: a scripted kill, a scripted hang
//! window) and its own serving-resilience state:
//!
//! * a per-replica [`CircuitBreaker`] fed by dispatch outcomes — a
//!   dispatch that misses its watchdog deadline is a failure; enough
//!   failures open the breaker, a virtual-time cooldown later it
//!   half-opens and probes serially, clean probes re-close it;
//! * a per-replica [`BrownoutController`] walking the evaluation-tier
//!   ladder `f64 → f32 → i16 → shed` as queue depth (per live replica)
//!   crosses hysteresis thresholds, so overload degrades precision before
//!   it drops traffic;
//! * **hedged re-dispatch**: once a dispatch outlives its tenants'
//!   rolling-p99-derived hedge delay, the same microbatch is re-sent to a
//!   second healthy replica and the first completion wins. The loser's
//!   work is *idempotently deduplicated* — a duplicate completion is a
//!   no-op on tenant counters — and its chip spend is attributed to
//!   [`QueryCategory::Hedge`], so the chip-query ledger still reconciles
//!   exactly: `chip queries == eval + hedge`.
//!
//! Requests carry absolute virtual-time deadlines (mandatory here — they
//! are what guarantees the run terminates even when every replica is
//! dead); expired work is cancelled at drain or requeue time, never
//! served. All of it is deterministic: same [`ResilientConfig`] ⇒
//! byte-identical [`ResilienceReport`], at any `PHOTON_THREADS`.

use photon_farm::{
    BreakerPolicy, BreakerState, BreakerTransition, BrownoutController, BrownoutPolicy,
    CircuitBreaker, CoalescePolicy, DedupLedger, DrainDecision, HedgeDelayTracker, HedgePolicy,
    RequestQueue, ServeRequest,
};
use photon_faults::ReplicaChaos;
use photon_photonics::{FabricatedChip, ServingTier};
use photon_trace::{LedgerCounts, QueryCategory};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arrivals::ArrivalGen;
use crate::cost::TierCostModel;
use crate::heap::EventHeap;
use crate::report::{fx, jf, jstr, tenant_row_json, TenantServingStats};
use crate::sim::{derive_seed, ChipBackend, TenantLoad, ARRIVAL_STREAM, SERVICE_STREAM};

/// One replica in the group: a chip slot pinned to the deployment theta,
/// plus its scripted failure modes.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Replica name (reporting only).
    pub name: String,
    /// Scripted chaos for this replica.
    pub chaos: ReplicaChaos,
}

impl ReplicaSpec {
    /// A replica with no scripted failures.
    pub fn clean(name: &str) -> Self {
        ReplicaSpec {
            name: name.to_string(),
            chaos: ReplicaChaos::none(),
        }
    }

    /// Attaches scripted chaos.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ReplicaChaos) -> Self {
        self.chaos = chaos;
        self
    }
}

/// Full specification of one resilient-serving run. Every field
/// participates in the deterministic replay contract.
#[derive(Debug, Clone)]
pub struct ResilientConfig {
    /// Root seed; every RNG stream derives from it.
    pub root_seed: u64,
    /// Arrival window in virtual nanoseconds.
    pub duration_ns: u64,
    /// The replica group.
    pub replicas: Vec<ReplicaSpec>,
    /// Microbatch coalescing policy.
    pub coalescer: CoalescePolicy,
    /// Tiered virtual-time cost model.
    pub cost: TierCostModel,
    /// Offered load, one entry per tenant.
    pub tenants: Vec<TenantLoad>,
    /// Relative deadline applied to tenants that don't set their own.
    /// Deadlines are mandatory in the resilient simulator: with every
    /// replica dead, expiry is what drains the queues and ends the run.
    pub default_deadline_ns: u64,
    /// Per-replica circuit-breaker thresholds.
    pub breaker: BreakerPolicy,
    /// Brownout tier-ladder hysteresis thresholds.
    pub brownout: BrownoutPolicy,
    /// Hedged re-dispatch policy; `None` disables hedging (the
    /// no-resilience control arm).
    pub hedge: Option<HedgePolicy>,
    /// Watchdog budget per dispatch: a dispatch that has not completed
    /// this many virtual nanoseconds after it started is abandoned and
    /// counted as a breaker failure.
    pub dispatch_timeout_ns: u64,
    /// Free-form label carried into the report.
    pub label: String,
}

impl ResilientConfig {
    /// Defaults: calibrated tiered cost model, coalescer (16, 100 µs),
    /// standard breaker/brownout/hedge policies, 5 ms default deadline,
    /// 500 µs dispatch watchdog, no replicas or tenants (add them with
    /// the builders).
    pub fn new(root_seed: u64, duration_ns: u64) -> Self {
        ResilientConfig {
            root_seed,
            duration_ns,
            replicas: Vec::new(),
            coalescer: CoalescePolicy::new(16, 100_000),
            cost: TierCostModel::calibrated_8x8(),
            tenants: Vec::new(),
            default_deadline_ns: 5_000_000,
            breaker: BreakerPolicy::standard(),
            brownout: BrownoutPolicy::standard(),
            hedge: Some(HedgePolicy::standard()),
            dispatch_timeout_ns: 500_000,
            label: String::new(),
        }
    }

    /// Adds a replica.
    #[must_use]
    pub fn with_replica(mut self, replica: ReplicaSpec) -> Self {
        self.replicas.push(replica);
        self
    }

    /// Adds a tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantLoad) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Sets the coalescing policy.
    #[must_use]
    pub fn with_coalescer(mut self, policy: CoalescePolicy) -> Self {
        self.coalescer = policy;
        self
    }

    /// Sets the breaker policy.
    #[must_use]
    pub fn with_breaker(mut self, policy: BreakerPolicy) -> Self {
        self.breaker = policy;
        self
    }

    /// Sets the brownout policy.
    #[must_use]
    pub fn with_brownout(mut self, policy: BrownoutPolicy) -> Self {
        self.brownout = policy;
        self
    }

    /// Sets (or disables, with `None`) the hedging policy.
    #[must_use]
    pub fn with_hedge(mut self, policy: Option<HedgePolicy>) -> Self {
        self.hedge = policy;
        self
    }

    /// Sets the default relative deadline.
    #[must_use]
    pub fn with_default_deadline_ns(mut self, ns: u64) -> Self {
        self.default_deadline_ns = ns;
        self
    }

    /// Sets the per-dispatch watchdog budget.
    #[must_use]
    pub fn with_dispatch_timeout_ns(mut self, ns: u64) -> Self {
        self.dispatch_timeout_ns = ns;
        self
    }

    /// Sets the report label.
    #[must_use]
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// The no-resilience control arm of the same scenario: breaker never
    /// trips, brownout never engages, no hedging. Deadlines and the
    /// watchdog stay — they are the plain timeout-and-retry baseline any
    /// serving stack has.
    #[must_use]
    pub fn without_resilience(mut self) -> Self {
        self.breaker = BreakerPolicy::disabled();
        self.brownout = BrownoutPolicy::disabled();
        self.hedge = None;
        self
    }
}

/// Runs the resilient simulation purely against the cost model.
pub fn run_resilient(cfg: &ResilientConfig) -> ResilienceReport {
    ResilientSim::new(cfg).run(None)
}

/// Runs the resilient simulation with every *non-abandoned* dispatch also
/// executed on `chip` through the pinned serving path. Abandoned
/// (timed-out or killed) dispatches never execute, so the chip's query
/// counter reconciles exactly with the ledger:
/// `chip queries == eval + hedge`. The simulated tier only affects virtual
/// timing — chip execution always goes through the pinned f64 path, one
/// query per request, which is what keeps the accounting exact.
///
/// # Panics
///
/// Panics when `chip` has no pinned compile base.
pub fn run_resilient_on_chip(cfg: &ResilientConfig, chip: &FabricatedChip) -> ResilienceReport {
    assert!(
        chip.has_pinned_base(),
        "serving requires a pinned compile base; call chip.pin_compile_base(theta) first"
    );
    let mut backend = ChipBackend::new(cfg.root_seed, cfg.coalescer.max_batch, chip);
    ResilientSim::new(cfg).run(Some(&mut backend))
}

/// Simulation events.
#[derive(Debug)]
enum REv {
    /// A request from tenant `i` arrives.
    Arrival(usize),
    /// A coalescer flush deadline fires (possibly stale — harmless).
    Flush,
    /// Dispatch `id` completes on its replica.
    Done(u64),
    /// Dispatch `id`'s watchdog budget expires.
    Timeout(u64),
    /// Group `id`'s hedge delay elapses.
    HedgeFire(u64),
    /// Replica `i`'s breaker cooldown expires (a wake-up; possibly stale).
    BreakerWake(usize),
}

/// One physical dispatch (a primary or hedge leg of a group).
#[derive(Debug)]
struct Dispatch {
    group: u64,
    replica: usize,
    tier: ServingTier,
    /// Still in flight: neither completed nor abandoned.
    live: bool,
    is_hedge: bool,
}

/// One logical microbatch: the set of requests plus its dispatch legs.
#[derive(Debug)]
struct Group {
    batch: Vec<ServeRequest>,
    /// Replica of the primary leg (hedges must pick a different one).
    primary_replica: usize,
    /// Legs currently in flight.
    live_legs: u8,
    /// No further leg may serve this group: either a leg already completed
    /// (first completion wins) or every leg was abandoned and the requests
    /// went back to the queues.
    resolved: bool,
    /// A hedge leg was already dispatched (at most one per group).
    hedged: bool,
}

struct ReplicaState {
    spec: ReplicaSpec,
    breaker: CircuitBreaker,
    brownout: BrownoutController,
    busy: bool,
    dispatches: u64,
    completions: u64,
    timeouts: u64,
    armed_wake: Option<u64>,
}

struct TenantAcc {
    arrivals: u64,
    completed: u64,
    expired: u64,
    brownout_shed: u64,
    latencies_ns: Vec<f64>,
}

struct ResilientSim<'a> {
    cfg: &'a ResilientConfig,
    heap: EventHeap<REv>,
    gens: Vec<ArrivalGen>,
    queues: Vec<RequestQueue>,
    acc: Vec<TenantAcc>,
    replicas: Vec<ReplicaState>,
    dispatches: Vec<Dispatch>,
    groups: Vec<Group>,
    dedup: DedupLedger,
    hedge_tracker: Option<HedgeDelayTracker>,
    /// Group-level controller gating *admission* (per-replica controllers
    /// pick serving tiers; this one decides when new arrivals are shed).
    admission: BrownoutController,
    ledger: LedgerCounts,
    svc_rng: StdRng,
    now: u64,
    next_id: u64,
    /// Round-robin replica cursor: the next batch starts its replica scan
    /// here, so consecutive batches spread across the group.
    cursor: usize,
    armed_flush: Option<u64>,
    hangs: u64,
    batches: u64,
    batch_requests: u64,
    hedges_fired: u64,
    hedge_wins: u64,
    last_completion_ns: u64,
    chip_queries: Option<u64>,
}

impl<'a> ResilientSim<'a> {
    fn new(cfg: &'a ResilientConfig) -> Self {
        assert!(!cfg.replicas.is_empty(), "need at least one replica");
        assert!(!cfg.tenants.is_empty(), "need at least one tenant");
        assert!(
            cfg.default_deadline_ns >= 1,
            "deadlines are mandatory in the resilient simulator"
        );
        assert!(
            cfg.dispatch_timeout_ns > cfg.cost.base.service_ns(cfg.coalescer.max_batch),
            "the dispatch watchdog must outlast a clean full-precision full batch"
        );
        let gens = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                ArrivalGen::new(t.process, derive_seed(cfg.root_seed, ARRIVAL_STREAM + i as u64))
            })
            .collect();
        let queues = cfg.tenants.iter().map(|t| RequestQueue::new(t.queue_cap)).collect();
        let acc = cfg
            .tenants
            .iter()
            .map(|_| TenantAcc {
                arrivals: 0,
                completed: 0,
                expired: 0,
                brownout_shed: 0,
                latencies_ns: Vec::new(),
            })
            .collect();
        let replicas = cfg
            .replicas
            .iter()
            .map(|spec| ReplicaState {
                spec: spec.clone(),
                breaker: CircuitBreaker::new(cfg.breaker),
                brownout: BrownoutController::new(cfg.brownout),
                busy: false,
                dispatches: 0,
                completions: 0,
                timeouts: 0,
                armed_wake: None,
            })
            .collect();
        ResilientSim {
            cfg,
            heap: EventHeap::new(),
            gens,
            queues,
            acc,
            replicas,
            dispatches: Vec::new(),
            groups: Vec::new(),
            dedup: DedupLedger::new(),
            hedge_tracker: cfg
                .hedge
                .map(|policy| HedgeDelayTracker::new(policy, cfg.tenants.len())),
            admission: BrownoutController::new(cfg.brownout),
            ledger: LedgerCounts::new(),
            svc_rng: StdRng::seed_from_u64(derive_seed(cfg.root_seed, SERVICE_STREAM)),
            now: 0,
            next_id: 0,
            cursor: 0,
            armed_flush: None,
            hangs: 0,
            batches: 0,
            batch_requests: 0,
            hedges_fired: 0,
            hedge_wins: 0,
            last_completion_ns: 0,
            chip_queries: None,
        }
    }

    fn run(mut self, mut backend: Option<&mut ChipBackend<'_>>) -> ResilienceReport {
        if backend.is_some() {
            self.chip_queries = Some(0);
        }
        for i in 0..self.gens.len() {
            let t0 = self.gens[i].next_after(0);
            if t0 < self.cfg.duration_ns {
                self.heap.schedule(t0, REv::Arrival(i));
            }
        }
        while let Some((at, _seq, ev)) = self.heap.pop() {
            debug_assert!(at >= self.now, "virtual time must be monotone");
            self.now = at;
            match ev {
                REv::Arrival(i) => self.on_arrival(i),
                REv::Flush => self.armed_flush = None,
                REv::BreakerWake(r) => self.replicas[r].armed_wake = None,
                REv::Done(id) => self.on_done(id, &mut backend),
                REv::Timeout(id) => self.on_timeout(id),
                REv::HedgeFire(g) => self.on_hedge_fire(g),
            }
            self.dispatch_all();
        }
        // Safety sweep: with deadlines mandatory the queues drain through
        // service or expiry before the heap empties; anything left (it
        // should be nothing) is accounted as expired so conservation holds.
        for t in 0..self.queues.len() {
            while let Some(req) = self.queues[t].pop_front() {
                debug_assert!(false, "queues must drain before the heap empties");
                self.acc[req.tenant].expired += 1;
            }
        }
        self.report()
    }

    fn total_depth(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// The brownout signal: queued requests per replica the breakers
    /// consider dispatchable. Replica deaths shrink the denominator, so
    /// the same queue reads as deeper brownout — the group degrades
    /// earlier when capacity is gone.
    fn brownout_signal(&self, depth: usize) -> usize {
        let live = self
            .replicas
            .iter()
            .filter(|r| r.breaker.state() != BreakerState::Open)
            .count()
            .max(1);
        depth.div_ceil(live)
    }

    fn on_arrival(&mut self, i: usize) {
        self.acc[i].arrivals += 1;
        let signal = self.brownout_signal(self.total_depth());
        let _ = self.admission.observe(self.now, signal);
        if self.admission.shedding() {
            self.acc[i].brownout_shed += 1;
        } else {
            let deadline = self
                .cfg
                .tenants[i]
                .deadline_ns
                .unwrap_or(self.cfg.default_deadline_ns);
            let req = ServeRequest {
                id: self.next_id,
                tenant: i,
                submitted_ns: self.now,
                deadline_ns: self.now.saturating_add(deadline),
            };
            self.next_id += 1;
            let _ = self.queues[i].push(req); // a full queue sheds
        }
        let next = self.gens[i].next_after(self.now);
        if next < self.cfg.duration_ns {
            self.heap.schedule(next, REv::Arrival(i));
        }
    }

    /// Fills idle replicas with coalesced batches, gated by each replica's
    /// breaker and served at the tier its brownout controller picks.
    /// Consecutive batches rotate across replicas (a round-robin cursor) —
    /// the load-balancing a real replica group does, and what spreads
    /// traffic onto a replica *before* anyone knows it is sick, so the
    /// breaker has something to observe.
    fn dispatch_all(&mut self) {
        let n = self.replicas.len();
        loop {
            let depth = self.total_depth();
            let oldest = self.queues.iter().filter_map(|q| q.front_submitted_ns()).min();
            match self.cfg.coalescer.decide(self.now, depth, oldest) {
                DrainDecision::Idle => return,
                DrainDecision::WaitUntil(deadline) => {
                    if self.armed_flush.is_none_or(|d| deadline < d) {
                        self.heap.schedule(deadline, REv::Flush);
                        self.armed_flush = Some(deadline);
                    }
                    return;
                }
                DrainDecision::Serve(count) => {
                    let mut chosen = None;
                    for k in 0..n {
                        let r = (self.cursor + k) % n;
                        if self.replicas[r].busy {
                            continue;
                        }
                        if !self.replicas[r].breaker.would_allow(self.now) {
                            // Blocked by an open breaker: arm a wake at
                            // cooldown expiry so queued work is not
                            // stranded on a quiet heap.
                            if let Some(w) = self.replicas[r].breaker.wake_at_ns() {
                                if self.replicas[r].armed_wake.is_none_or(|t| w < t) {
                                    self.heap.schedule(w, REv::BreakerWake(r));
                                    self.replicas[r].armed_wake = Some(w);
                                }
                            }
                            continue;
                        }
                        chosen = Some(r);
                        break;
                    }
                    // No idle, admitting replica: the batch waits for the
                    // next Done / Timeout / BreakerWake.
                    let Some(r) = chosen else { return };
                    let signal = self.brownout_signal(depth);
                    let _ = self.replicas[r].brownout.observe(self.now, signal);
                    let batch = self.drain(count);
                    if batch.is_empty() {
                        continue; // everything drained had expired; re-decide
                    }
                    let admitted = self.replicas[r].breaker.allow(self.now);
                    debug_assert!(admitted, "would_allow implies allow");
                    self.cursor = (r + 1) % n;
                    let g = self.groups.len() as u64;
                    self.groups.push(Group {
                        batch,
                        primary_replica: r,
                        live_legs: 0,
                        resolved: false,
                        hedged: false,
                    });
                    self.start_leg(r, g, false);
                    if self.hedge_tracker.is_some() {
                        let delay = self.hedge_delay_for(g);
                        self.heap.schedule(self.now.saturating_add(delay), REv::HedgeFire(g));
                    }
                }
            }
        }
    }

    /// The hedge delay for group `g`: the slowest of its tenants' rolling
    /// p99-derived delays (a batch is only safe to hedge once *every*
    /// member has outlived its own tail expectation).
    fn hedge_delay_for(&mut self, g: u64) -> u64 {
        let tracker = self
            .hedge_tracker
            .as_mut()
            .expect("caller checked hedging is enabled");
        let mut delay = 0u64;
        for t in 0..self.queues.len() {
            if self.groups[g as usize].batch.iter().any(|r| r.tenant == t) {
                delay = delay.max(tracker.delay_ns(t));
            }
        }
        delay
    }

    /// Pops up to `n` servable requests round-robin across tenants,
    /// dropping expired ones (deadline propagation: expired work is
    /// cancelled before dispatch, never served).
    fn drain(&mut self, n: usize) -> Vec<ServeRequest> {
        let tenants = self.queues.len();
        let mut batch = Vec::with_capacity(n);
        // Round-robin without a persistent cursor: the per-replica loop
        // already interleaves tenants, and a fixed scan order keeps the
        // drain a pure function of queue contents.
        'outer: while batch.len() < n {
            for i in 0..tenants {
                if let Some(req) = self.queues[i].pop_front() {
                    if req.expired(self.now) {
                        self.acc[req.tenant].expired += 1;
                    } else {
                        batch.push(req);
                    }
                    continue 'outer;
                }
            }
            break;
        }
        batch
    }

    /// Starts one physical dispatch leg of `group` on replica `r`.
    fn start_leg(&mut self, r: usize, group: u64, is_hedge: bool) {
        let len = self.groups[group as usize].batch.len();
        let tier = self.replicas[r].brownout.drain_tier();
        let id = self.dispatches.len() as u64;
        self.dispatches.push(Dispatch {
            group,
            replica: r,
            tier,
            live: true,
            is_hedge,
        });
        self.groups[group as usize].live_legs += 1;
        let rep = &mut self.replicas[r];
        rep.busy = true;
        rep.dispatches += 1;
        let hang = self.cfg.cost.base.draw_hang_ns(&mut self.svc_rng);
        if hang > 0 {
            self.hangs += 1;
        }
        let service = self.cfg.cost.service_ns(tier, len) + hang;
        let mut done = self.now + service;
        let chaos = rep.spec.chaos;
        if let Some(release) = chaos.hang_release(self.now, done) {
            // The dispatch straddles the scripted hang window: it restarts
            // once the link un-wedges.
            done = release + service;
        }
        // A replica killed before the completion instant never completes
        // the dispatch — only the watchdog below gets it back.
        let killed = chaos.kill_at_ns.is_some_and(|k| done >= k);
        if !killed {
            self.heap.schedule(done, REv::Done(id));
        }
        self.heap
            .schedule(self.now + self.cfg.dispatch_timeout_ns, REv::Timeout(id));
        self.batches += 1;
        self.batch_requests += len as u64;
    }

    fn on_done(&mut self, id: u64, backend: &mut Option<&mut ChipBackend<'_>>) {
        let (group, replica, tier, is_hedge) = {
            let d = &self.dispatches[id as usize];
            if !d.live {
                return; // abandoned by the watchdog; the late completion is void
            }
            (d.group, d.replica, d.tier, d.is_hedge)
        };
        self.dispatches[id as usize].live = false;
        let g = group as usize;
        self.groups[g].live_legs -= 1;
        let len = self.groups[g].batch.len();
        let rep = &mut self.replicas[replica];
        rep.busy = false;
        rep.completions += 1;
        rep.breaker.record_success(self.now);
        rep.brownout.record_served(tier, len as u64);
        if let Some(b) = backend.as_deref_mut() {
            let spent = b.serve(len);
            *self.chip_queries.get_or_insert(0) += spent;
        }
        let first = !self.groups[g].resolved;
        if first {
            self.groups[g].resolved = true;
            if is_hedge {
                self.hedge_wins += 1;
            }
        }
        // Idempotent completion: each request counts once, ever. The
        // winning leg's queries are Eval; a losing (duplicate) leg's are
        // Hedge — the ledger attribution that keeps chip spend exact.
        for k in 0..len {
            let req = self.groups[g].batch[k];
            if self.dedup.mark_served(req.id) {
                self.ledger.add(QueryCategory::Eval, 1);
                let latency = (self.now - req.submitted_ns) as f64;
                let acc = &mut self.acc[req.tenant];
                acc.completed += 1;
                acc.latencies_ns.push(latency);
                if let Some(tracker) = self.hedge_tracker.as_mut() {
                    tracker.record(req.tenant, latency);
                }
            } else {
                self.ledger.add(QueryCategory::Hedge, 1);
            }
        }
        self.last_completion_ns = self.last_completion_ns.max(self.now);
    }

    fn on_timeout(&mut self, id: u64) {
        let (group, replica) = {
            let d = &self.dispatches[id as usize];
            if !d.live {
                return; // completed before the watchdog fired
            }
            (d.group, d.replica)
        };
        self.dispatches[id as usize].live = false;
        let g = group as usize;
        self.groups[g].live_legs -= 1;
        let rep = &mut self.replicas[replica];
        rep.busy = false;
        rep.timeouts += 1;
        rep.breaker.record_failure(self.now);
        if !self.groups[g].resolved && self.groups[g].live_legs == 0 {
            // No leg can serve this group any more: rescue the requests.
            // Requeued at the *front* (in original order) so the wait they
            // already paid keeps counting toward their deadlines; requests
            // already past theirs are cancelled as expired here.
            self.groups[g].resolved = true;
            let batch = std::mem::take(&mut self.groups[g].batch);
            for req in batch.iter().rev() {
                if req.expired(self.now) {
                    self.acc[req.tenant].expired += 1;
                } else {
                    let _ = self.queues[req.tenant].requeue_front(*req); // full queue sheds
                }
            }
            self.groups[g].batch = batch;
        }
    }

    fn on_hedge_fire(&mut self, g: u64) {
        let gi = g as usize;
        if self.groups[gi].resolved || self.groups[gi].hedged {
            return; // already served, rescued, or hedged — stale timer
        }
        debug_assert!(self.groups[gi].live_legs > 0, "unresolved group must have a leg");
        let primary = self.groups[gi].primary_replica;
        let candidate = (0..self.replicas.len()).find(|&r| {
            r != primary && !self.replicas[r].busy && self.replicas[r].breaker.would_allow(self.now)
        });
        if let Some(r) = candidate {
            let admitted = self.replicas[r].breaker.allow(self.now);
            debug_assert!(admitted, "would_allow implies allow");
            self.groups[gi].hedged = true;
            self.hedges_fired += 1;
            self.start_leg(r, g, true);
        } else if let Some(tracker) = self.hedge_tracker.as_ref() {
            // No healthy idle replica right now — retry shortly instead of
            // abandoning the batch to the full watchdog budget (replicas
            // free up on microsecond scales; the hedge window is the tail
            // budget). The retry loop is bounded: once the primary's
            // watchdog fires the group resolves (served or requeued) and
            // the pending HedgeFire goes stale.
            let retry = self.now.saturating_add(tracker.policy().min_delay_ns.max(1));
            self.heap.schedule(retry, REv::HedgeFire(g));
        }
    }

    fn report(self) -> ResilienceReport {
        let makespan_ns = self.last_completion_ns.max(1);
        let per_tenant: Vec<TenantServingStats> = self
            .cfg
            .tenants
            .iter()
            .zip(&self.acc)
            .zip(&self.queues)
            .map(|((tenant, acc), queue)| {
                TenantServingStats::from_samples(
                    &tenant.name,
                    acc.arrivals,
                    acc.completed,
                    queue.shed() + acc.brownout_shed,
                    acc.expired,
                    queue.peak_depth() as u64,
                    &acc.latencies_ns,
                    makespan_ns,
                )
            })
            .collect();
        let all_latencies: Vec<f64> = self
            .acc
            .iter()
            .flat_map(|a| a.latencies_ns.iter().copied())
            .collect();
        let aggregate = TenantServingStats::from_samples(
            "all",
            self.acc.iter().map(|a| a.arrivals).sum(),
            self.acc.iter().map(|a| a.completed).sum(),
            self.queues.iter().map(|q| q.shed()).sum::<u64>()
                + self.acc.iter().map(|a| a.brownout_shed).sum::<u64>(),
            self.acc.iter().map(|a| a.expired).sum(),
            self.queues.iter().map(|q| q.peak_depth() as u64).max().unwrap_or(0),
            &all_latencies,
            makespan_ns,
        );
        let replicas = self
            .replicas
            .iter()
            .map(|r| ReplicaStats {
                name: r.spec.name.clone(),
                dispatches: r.dispatches,
                completions: r.completions,
                timeouts: r.timeouts,
                final_breaker: r.breaker.state(),
                breaker_transitions: r.breaker.transitions().to_vec(),
                tier_served: r.brownout.served(),
                tier_transitions: r.brownout.transitions().len() as u64,
            })
            .collect();
        let mean_batch = if self.batches > 0 {
            self.batch_requests as f64 / self.batches as f64
        } else {
            f64::NAN
        };
        ResilienceReport {
            label: self.cfg.label.clone(),
            root_seed: self.cfg.root_seed,
            duration_ns: self.cfg.duration_ns,
            makespan_ns,
            tenants: per_tenant,
            aggregate,
            replicas,
            batches: self.batches,
            mean_batch,
            hangs: self.hangs,
            hedges_fired: self.hedges_fired,
            hedge_wins: self.hedge_wins,
            duplicates: self.dedup.duplicates(),
            eval_queries: self.ledger.get(QueryCategory::Eval),
            hedge_queries: self.ledger.get(QueryCategory::Hedge),
            chip_queries: self.chip_queries,
        }
    }
}

/// Per-replica shutdown stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Replica name.
    pub name: String,
    /// Dispatch legs started on it (primaries and hedges).
    pub dispatches: u64,
    /// Legs that completed (including duplicate hedge legs).
    pub completions: u64,
    /// Legs abandoned by the watchdog.
    pub timeouts: u64,
    /// Breaker state at shutdown.
    pub final_breaker: BreakerState,
    /// The breaker's full transition log, oldest first — deterministic
    /// virtual-time stamps the chaos tests assert on.
    pub breaker_transitions: Vec<BreakerTransition>,
    /// Requests served per precision tier (`[f64, f32, i16]`).
    pub tier_served: [u64; 3],
    /// Brownout rung changes observed.
    pub tier_transitions: u64,
}

/// Complete result of one resilient-serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Config label.
    pub label: String,
    /// Root seed.
    pub root_seed: u64,
    /// Arrival window, virtual ns.
    pub duration_ns: u64,
    /// Virtual time of the last completion.
    pub makespan_ns: u64,
    /// Per-tenant rows (`shed` folds queue-cap and brownout sheds).
    pub tenants: Vec<TenantServingStats>,
    /// The all-tenants aggregate row.
    pub aggregate: TenantServingStats,
    /// Per-replica rows, in replica order.
    pub replicas: Vec<ReplicaStats>,
    /// Dispatch legs started (primaries and hedges).
    pub batches: u64,
    /// Mean requests per dispatch leg.
    pub mean_batch: f64,
    /// Dispatches struck by a random fault hang (scripted hang windows are
    /// counted per replica via timeouts instead).
    pub hangs: u64,
    /// Hedge legs dispatched.
    pub hedges_fired: u64,
    /// Groups where the hedge leg completed first.
    pub hedge_wins: u64,
    /// Duplicate request completions (each was a no-op on counters).
    pub duplicates: u64,
    /// Chip queries attributed to first-completion work
    /// (`QueryCategory::Eval`).
    pub eval_queries: u64,
    /// Chip queries attributed to duplicate hedged work
    /// (`QueryCategory::Hedge`).
    pub hedge_queries: u64,
    /// Chip queries spent when the run drove a real chip; must equal
    /// `eval_queries + hedge_queries` exactly.
    pub chip_queries: Option<u64>,
}

impl ResilienceReport {
    /// Requests lost to overload or failure: shed (queue cap or brownout)
    /// plus expired. The chaos gates compare this across arms.
    pub fn lost(&self) -> u64 {
        self.aggregate.shed + self.aggregate.expired
    }

    /// Whether every arrival is accounted for exactly once:
    /// `arrivals == completed + shed + expired`, per tenant and aggregate.
    pub fn conserves_requests(&self) -> bool {
        self.tenants.iter().chain([&self.aggregate]).all(|t| {
            t.arrivals == t.completed + t.shed + t.expired
        })
    }

    /// Deterministic plain-text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "resilient serving [{}] seed {}: {} replica(s), window {} ms, makespan {} ms",
            if self.label.is_empty() { "unlabeled" } else { &self.label },
            self.root_seed,
            self.replicas.len(),
            fx(self.duration_ns as f64 / 1e6, 3),
            fx(self.makespan_ns as f64 / 1e6, 3),
        );
        let _ = writeln!(
            out,
            "  {} dispatch legs (mean batch {}), {} hangs, {} hedges ({} wins), {} duplicate completions",
            self.batches,
            fx(self.mean_batch, 2),
            self.hangs,
            self.hedges_fired,
            self.hedge_wins,
            self.duplicates,
        );
        let _ = writeln!(
            out,
            "  ledger: eval {} + hedge {} queries{}",
            self.eval_queries,
            self.hedge_queries,
            match self.chip_queries {
                Some(q) => format!(" == chip {q}"),
                None => String::new(),
            },
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>10} {:>10} {:>9} {:>10} {:>24} {:>9}",
            "replica", "dispatches", "completed", "timeouts", "breaker", "tiers f64/f32/i16", "rungmoves"
        );
        for r in &self.replicas {
            let _ = writeln!(
                out,
                "  {:<10} {:>10} {:>10} {:>9} {:>10} {:>24} {:>9}",
                r.name,
                r.dispatches,
                r.completions,
                r.timeouts,
                r.final_breaker.label(),
                format!("{}/{}/{}", r.tier_served[0], r.tier_served[1], r.tier_served[2]),
                r.tier_transitions,
            );
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>9} {:>9} {:>7} {:>7} {:>10} {:>10} {:>10} {:>11} {:>6}",
            "tenant", "arrivals", "done", "shed", "expired", "p50us", "p99us", "p999us", "rps", "peakq"
        );
        for row in self.tenants.iter().chain([&self.aggregate]) {
            let _ = writeln!(
                out,
                "  {:<10} {:>9} {:>9} {:>7} {:>7} {:>10} {:>10} {:>10} {:>11} {:>6}",
                row.tenant,
                row.arrivals,
                row.completed,
                row.shed,
                row.expired,
                fx(row.p50_ns / 1e3, 1),
                fx(row.p99_ns / 1e3, 1),
                fx(row.p999_ns / 1e3, 1),
                fx(row.throughput_rps, 0),
                row.peak_queue_depth,
            );
        }
        out
    }

    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> String {
        let replica = |r: &ReplicaStats| {
            let transitions: Vec<String> = r
                .breaker_transitions
                .iter()
                .map(|t| {
                    format!(
                        "{{\"at_ns\":{},\"from\":{},\"to\":{}}}",
                        t.at_ns,
                        jstr(t.from.label()),
                        jstr(t.to.label()),
                    )
                })
                .collect();
            format!(
                "{{\"name\":{},\"dispatches\":{},\"completions\":{},\"timeouts\":{},\"breaker\":{},\"breaker_transitions\":[{}],\"tier_served\":[{},{},{}],\"tier_transitions\":{}}}",
                jstr(&r.name),
                r.dispatches,
                r.completions,
                r.timeouts,
                jstr(r.final_breaker.label()),
                transitions.join(","),
                r.tier_served[0],
                r.tier_served[1],
                r.tier_served[2],
                r.tier_transitions,
            )
        };
        let replicas: Vec<String> = self.replicas.iter().map(replica).collect();
        let tenants: Vec<String> = self.tenants.iter().map(tenant_row_json).collect();
        format!(
            "{{\"label\":{},\"root_seed\":{},\"duration_ns\":{},\"makespan_ns\":{},\"batches\":{},\"mean_batch\":{},\"hangs\":{},\"hedges_fired\":{},\"hedge_wins\":{},\"duplicates\":{},\"eval_queries\":{},\"hedge_queries\":{},\"chip_queries\":{},\"replicas\":[{}],\"tenants\":[{}],\"aggregate\":{}}}",
            jstr(&self.label),
            self.root_seed,
            self.duration_ns,
            self.makespan_ns,
            self.batches,
            jf(self.mean_batch),
            self.hangs,
            self.hedges_fired,
            self.hedge_wins,
            self.duplicates,
            self.eval_queries,
            self.hedge_queries,
            match self.chip_queries {
                Some(q) => q.to_string(),
                None => "null".to_string(),
            },
            replicas.join(","),
            tenants.join(","),
            tenant_row_json(&self.aggregate),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;

    fn healthy_cfg(seed: u64) -> ResilientConfig {
        ResilientConfig::new(seed, 20_000_000)
            .with_label("healthy")
            .with_replica(ReplicaSpec::clean("r0"))
            .with_replica(ReplicaSpec::clean("r1"))
            .with_replica(ReplicaSpec::clean("r2"))
            .with_tenant(TenantLoad::new(
                "alice",
                ArrivalProcess::Poisson { rate_hz: 60_000.0 },
            ))
            .with_tenant(TenantLoad::new(
                "bob",
                ArrivalProcess::Poisson { rate_hz: 40_000.0 },
            ))
    }

    #[test]
    fn healthy_group_serves_everything_and_replays_bitwise() {
        let report = run_resilient(&healthy_cfg(7));
        assert!(report.conserves_requests());
        assert_eq!(report.lost(), 0, "a healthy, underloaded group loses nothing");
        assert_eq!(report.duplicates, 0, "no failures → no hedge races");
        assert_eq!(report.eval_queries, report.aggregate.completed);
        for r in &report.replicas {
            assert_eq!(r.final_breaker, BreakerState::Closed);
            assert!(r.breaker_transitions.is_empty());
            assert_eq!(r.timeouts, 0);
        }
        assert_eq!(report.to_json(), run_resilient(&healthy_cfg(7)).to_json());
        assert_ne!(report.to_json(), run_resilient(&healthy_cfg(8)).to_json());
    }

    #[test]
    fn killed_replica_trips_its_breaker_and_work_reroutes() {
        let cfg = healthy_cfg(11).with_label("kill").with_replica(ReplicaSpec::clean("extra"));
        let mut cfg = cfg;
        cfg.replicas[0].chaos = ReplicaChaos::none().kill_at(2_000_000);
        let report = run_resilient(&cfg);
        assert!(report.conserves_requests());
        let dead = &report.replicas[0];
        assert_eq!(dead.final_breaker, BreakerState::Open, "killed replica ends open");
        let first_open = dead
            .breaker_transitions
            .iter()
            .find(|t| t.to == BreakerState::Open)
            .expect("breaker must open after the kill");
        assert!(first_open.at_ns >= 2_000_000, "cannot open before the kill");
        // Everything still lands (deadlines are 5 ms, watchdog 500 us, and
        // three healthy replicas remain).
        assert_eq!(report.aggregate.expired + report.aggregate.shed, report.lost());
        assert!(report.aggregate.completed > 0);
    }

    #[test]
    fn brownout_engages_under_overload_and_serves_cheaper_tiers() {
        let cfg = ResilientConfig::new(3, 20_000_000)
            .with_label("overload")
            .with_replica(ReplicaSpec::clean("r0"))
            .with_tenant(
                TenantLoad::new("flood", ArrivalProcess::Poisson { rate_hz: 900_000.0 })
                    .with_queue_cap(256),
            );
        let report = run_resilient(&cfg);
        assert!(report.conserves_requests());
        let r = &report.replicas[0];
        assert!(
            r.tier_served[1] + r.tier_served[2] > 0,
            "sustained overload must push serving off the f64 tier: {:?}",
            r.tier_served
        );
        assert!(r.tier_transitions > 0);
        // The control arm at the same load never leaves f64.
        let control = run_resilient(&cfg.clone().without_resilience());
        assert_eq!(control.replicas[0].tier_served[1], 0);
        assert_eq!(control.replicas[0].tier_served[2], 0);
    }

    #[test]
    fn hedging_dedups_and_ledger_attributes_duplicates() {
        // Random 2 ms hangs on 2% of dispatches: hung dispatches outlive
        // the hedge delay, the hedge serves, and the hung leg completes
        // later as a pure duplicate.
        let mut cfg = healthy_cfg(19).with_label("hedgy");
        cfg.cost.base = cfg.cost.base.with_hangs(0.02, 2_000_000);
        cfg.dispatch_timeout_ns = 4_000_000; // hangs finish before the watchdog
        let report = run_resilient(&cfg);
        assert!(report.conserves_requests());
        assert!(report.hedges_fired > 0, "2% hangs must trigger hedges");
        assert!(report.duplicates > 0, "slow legs must complete as duplicates");
        assert_eq!(
            report.hedge_queries, report.duplicates,
            "every duplicate completion is attributed to the hedge ledger"
        );
        assert_eq!(report.eval_queries, report.aggregate.completed);
        assert_eq!(report.to_json(), run_resilient(&cfg).to_json());
    }
}
