//! The discrete-event serving simulator.
//!
//! One run is a pure function of a [`SimConfig`]: arrivals, dispatch
//! decisions, service times, and fault hangs all derive from RNG streams
//! seeded from the config's root seed, and all timing is *virtual*
//! nanoseconds advanced by the event heap — the simulator never reads a
//! clock. Identical config ⇒ byte-identical [`ServingReport`], on any
//! host, at any `PHOTON_THREADS` setting.
//!
//! The model: `workers` interchangeable chip slots serve two traffic
//! classes — open-loop inference requests from per-tenant bounded queues,
//! and periodic background recalibration passes (which own a worker for
//! [`CostModel::recal_service_ns`], the way `photon-calib`'s drift
//! recalibration owns the chip). An idle worker asks the
//! [`CoalescePolicy`] whether to drain a microbatch now, wait for the
//! flush deadline, or idle; each dispatch is charged virtual time from the
//! calibrated [`CostModel`]. Optionally, every dispatch is *also* executed
//! on a real [`FabricatedChip`] through the pinned serving path
//! ([`run_on_chip`]), which keeps the simulator honest: the chip's query
//! counter must reconcile exactly with the simulated completion count.

use photon_farm::{CoalescePolicy, DrainDecision, RequestQueue, ServeRequest, NO_DEADLINE};
use photon_linalg::CVector;
use photon_photonics::{BatchScratch, FabricatedChip};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arrivals::{ArrivalGen, ArrivalProcess};
use crate::cost::CostModel;
use crate::heap::EventHeap;
use crate::report::{ServingReport, TenantServingStats};

/// One tenant's offered load.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Tenant name (reporting only).
    pub name: String,
    /// The tenant's arrival process.
    pub process: ArrivalProcess,
    /// Bound on the tenant's request queue; arrivals beyond it are shed.
    pub queue_cap: usize,
    /// Relative completion deadline each request carries (virtual ns past
    /// its arrival), `None` for deadline-free requests. A request whose
    /// deadline has passed by the time a worker drains it is dropped as
    /// *expired* rather than served — its caller already gave up.
    pub deadline_ns: Option<u64>,
}

impl TenantLoad {
    /// A tenant with a queue bound of 4096 requests and no deadlines.
    pub fn new(name: &str, process: ArrivalProcess) -> Self {
        TenantLoad {
            name: name.to_string(),
            process,
            queue_cap: 4096,
            deadline_ns: None,
        }
    }

    /// Overrides the queue bound.
    #[must_use]
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Attaches a relative completion deadline to every request.
    ///
    /// # Panics
    ///
    /// Panics on a zero deadline — every request would expire on arrival.
    #[must_use]
    pub fn with_deadline_ns(mut self, deadline_ns: u64) -> Self {
        assert!(deadline_ns >= 1, "a zero deadline expires everything at arrival");
        self.deadline_ns = Some(deadline_ns);
        self
    }
}

/// Background recalibration traffic: one pass every `period_ns`, first
/// pass at `start_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecalTraffic {
    /// Virtual time of the first pass.
    pub start_ns: u64,
    /// Pass period in virtual nanoseconds.
    pub period_ns: u64,
}

/// Piggybacked calibration-probe traffic: a backlog of `total` probe
/// measurements that the dispatcher feeds into *idle* microbatch slots —
/// slots where the coalescer chose to idle or wait rather than serve — at
/// most `per_window` probes per `window_ns` window starting at `start_ns`.
///
/// Probes never preempt a servable inference batch, so their only latency
/// cost is occupying a worker for [`CostModel::probe_service_ns`] when a
/// request arrives just after the probe started; the window budget bounds
/// how often that can happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeTraffic {
    /// Virtual time the probe backlog opens.
    pub start_ns: u64,
    /// Total probe measurements to take (the calibration sweep size).
    pub total: u64,
    /// Probe budget per window; 0 disables piggybacking entirely.
    pub per_window: u32,
    /// Budget window length in virtual nanoseconds.
    pub window_ns: u64,
}

/// Canary comparison traffic: every `period_ns` starting at `start_ns`, a
/// comparison batch of `samples` requests is served (deployed vs shadow
/// evaluation of the same inputs — one coalesced dispatch). Canaries rank
/// between recalibration and inference: they gate a promotion decision, so
/// they must not starve, but they are rarer than inference batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanaryTraffic {
    /// Virtual time of the first comparison batch.
    pub start_ns: u64,
    /// Comparison period in virtual nanoseconds.
    pub period_ns: u64,
    /// Requests per comparison batch.
    pub samples: usize,
}

/// Full specification of one simulation run. Every field participates in
/// the deterministic replay contract.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Root seed; every RNG stream in the run derives from it.
    pub root_seed: u64,
    /// Arrival window in virtual nanoseconds. Arrivals stop here; the run
    /// continues until the queues drain.
    pub duration_ns: u64,
    /// Interchangeable chip-serving workers.
    pub workers: usize,
    /// Microbatch coalescing policy for the serving path.
    pub coalescer: CoalescePolicy,
    /// Virtual-time service cost model.
    pub cost: CostModel,
    /// Offered load, one entry per tenant.
    pub tenants: Vec<TenantLoad>,
    /// Optional background recalibration traffic.
    pub recalibration: Option<RecalTraffic>,
    /// Optional piggybacked calibration-probe traffic.
    pub probes: Option<ProbeTraffic>,
    /// Optional canary comparison traffic.
    pub canary: Option<CanaryTraffic>,
    /// Free-form label carried into the report.
    pub label: String,
}

impl SimConfig {
    /// A single-worker, uncoalesced config with the calibrated 8x8 cost
    /// model and no tenants; add load with [`Self::with_tenant`].
    pub fn new(root_seed: u64, duration_ns: u64) -> Self {
        SimConfig {
            root_seed,
            duration_ns,
            workers: 1,
            coalescer: CoalescePolicy::uncoalesced(),
            cost: CostModel::calibrated_8x8(),
            tenants: Vec::new(),
            recalibration: None,
            probes: None,
            canary: None,
            label: String::new(),
        }
    }

    /// Adds a tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantLoad) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Sets the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the coalescing policy.
    #[must_use]
    pub fn with_coalescer(mut self, policy: CoalescePolicy) -> Self {
        self.coalescer = policy;
        self
    }

    /// Sets the cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Enables background recalibration traffic.
    #[must_use]
    pub fn with_recalibration(mut self, recal: RecalTraffic) -> Self {
        self.recalibration = Some(recal);
        self
    }

    /// Enables piggybacked calibration-probe traffic.
    #[must_use]
    pub fn with_probes(mut self, probes: ProbeTraffic) -> Self {
        assert!(probes.window_ns >= 1, "probe window must be nonzero");
        self.probes = Some(probes);
        self
    }

    /// Enables canary comparison traffic.
    #[must_use]
    pub fn with_canary(mut self, canary: CanaryTraffic) -> Self {
        assert!(canary.samples >= 1, "a canary batch needs samples");
        self.canary = Some(canary);
        self
    }

    /// Sets the report label.
    #[must_use]
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }
}

/// Runs the simulation purely against the cost model (no chip attached).
pub fn run(cfg: &SimConfig) -> ServingReport {
    Simulator::new(cfg).run(None)
}

/// Runs the simulation with every coalesced dispatch *also* executed on
/// `chip` through [`FabricatedChip::serve_pinned_batch_into`]. Virtual
/// timing still comes from the cost model (wall time never leaks in), but
/// the chip's query counter must reconcile exactly with the simulated
/// completion count — the report records it in
/// [`ServingReport::chip_queries`].
///
/// # Panics
///
/// Panics when `chip` has no pinned compile base — pin the deployment
/// theta first; serving is defined as evaluation at the pinned base.
pub fn run_on_chip(cfg: &SimConfig, chip: &FabricatedChip) -> ServingReport {
    assert!(
        chip.has_pinned_base(),
        "serving requires a pinned compile base; call chip.pin_compile_base(theta) first"
    );
    let mut backend = ChipBackend::new(cfg.root_seed, cfg.coalescer.max_batch, chip);
    Simulator::new(cfg).run(Some(&mut backend))
}

/// Derives a child seed for an independent RNG stream (SplitMix64-style
/// mixing, so adjacent stream ids land far apart).
///
/// Every stream — including stream 0 — perturbs the root through a
/// distinct nonzero **odd** gamma `(2·stream + 1)·φ` before the finalizer.
/// A plain `stream·γ` offset is 0 at stream 0, which would leave the
/// pre-mix state equal to the root verbatim and make
/// `derive_seed(r ^ s·γ, 0) == derive_seed(r, s)`: a cross-stream
/// collision family correlating stream 0 with every other stream.
pub(crate) fn derive_seed(root: u64, stream: u64) -> u64 {
    let gamma = stream
        .wrapping_mul(2)
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut z = root.wrapping_add(gamma);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// Stream-id tags for seed derivation (arbitrary distinct constants; tenant
// arrival streams use ARRIVAL_STREAM + tenant index).
pub(crate) const ARRIVAL_STREAM: u64 = 0x41;
pub(crate) const SERVICE_STREAM: u64 = 0xFA11;
const INPUT_STREAM: u64 = 0x1122;

/// Executes dispatches on a real chip via the pinned serving path. Shared
/// with the resilient replica-group simulator (`crate::resilient`).
pub(crate) struct ChipBackend<'c> {
    chip: &'c FabricatedChip,
    scratch: BatchScratch,
    /// A small pool of pre-generated inputs cycled through by dispatch
    /// order (seeded from the root seed, so chip results are replayable
    /// too).
    inputs: Vec<CVector>,
    cursor: usize,
}

impl<'c> ChipBackend<'c> {
    pub(crate) fn new(root_seed: u64, max_batch: usize, chip: &'c FabricatedChip) -> Self {
        let dim = chip.input_dim();
        let mut rng = StdRng::seed_from_u64(derive_seed(root_seed, INPUT_STREAM));
        let pool = max_batch.max(16);
        let inputs = (0..pool)
            .map(|_| photon_linalg::random::normal_cvector(dim, &mut rng))
            .collect();
        ChipBackend {
            chip,
            scratch: BatchScratch::new(),
            inputs,
            cursor: 0,
        }
    }

    /// Serves one coalesced batch of `len` requests; returns the chip
    /// queries spent (== `len`).
    pub(crate) fn serve(&mut self, len: usize) -> u64 {
        let refs: Vec<&CVector> = (0..len)
            .map(|k| &self.inputs[(self.cursor + k) % self.inputs.len()])
            .collect();
        self.cursor = (self.cursor + len) % self.inputs.len();
        let out = self
            .chip
            .serve_pinned_batch_into(&refs, &mut self.scratch)
            .expect("pinned base checked at run_on_chip entry");
        debug_assert_eq!(out.len(), len);
        len as u64
    }
}

/// Simulation events. Workers are interchangeable, so a completion does
/// not need to name one — it frees a slot.
#[derive(Debug)]
enum Ev {
    /// A request from tenant `i` arrives.
    Arrival(usize),
    /// A background recalibration pass becomes due.
    Recal,
    /// A canary comparison batch becomes due.
    Canary,
    /// A fresh probe-budget window opens (a wake-up for a backlog that ran
    /// out of budget with idle workers; possibly stale — harmless).
    ProbeWindow,
    /// A coalescer flush deadline fires (possibly stale — harmless).
    Flush,
    /// A dispatch finishes, freeing a worker slot.
    Done,
}

/// Per-tenant accumulation during a run.
struct TenantAcc {
    arrivals: u64,
    completed: u64,
    expired: u64,
    latencies_ns: Vec<f64>,
}

struct Simulator<'a> {
    cfg: &'a SimConfig,
    heap: EventHeap<Ev>,
    gens: Vec<ArrivalGen>,
    queues: Vec<RequestQueue>,
    acc: Vec<TenantAcc>,
    svc_rng: StdRng,
    now: u64,
    next_id: u64,
    busy: usize,
    rr_cursor: usize,
    armed_flush: Option<u64>,
    recal_pending: u64,
    recals_done: u64,
    canary_pending: u64,
    canaries_done: u64,
    /// Probe measurements not yet dispatched.
    probe_backlog: u64,
    probes_done: u64,
    /// (window index, probes spent in it) — the budget accumulator.
    probe_window: (u64, u32),
    /// Virtual time of the probe wake-up currently in the heap, if any.
    armed_probe_wake: Option<u64>,
    hangs: u64,
    batches: u64,
    batch_requests: u64,
    last_completion_ns: u64,
    chip_queries: Option<u64>,
}

impl<'a> Simulator<'a> {
    fn new(cfg: &'a SimConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(!cfg.tenants.is_empty(), "need at least one tenant");
        let gens = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                ArrivalGen::new(t.process, derive_seed(cfg.root_seed, ARRIVAL_STREAM + i as u64))
            })
            .collect();
        let queues = cfg.tenants.iter().map(|t| RequestQueue::new(t.queue_cap)).collect();
        let acc = cfg
            .tenants
            .iter()
            .map(|_| TenantAcc {
                arrivals: 0,
                completed: 0,
                expired: 0,
                latencies_ns: Vec::new(),
            })
            .collect();
        Simulator {
            cfg,
            heap: EventHeap::new(),
            gens,
            queues,
            acc,
            svc_rng: StdRng::seed_from_u64(derive_seed(cfg.root_seed, SERVICE_STREAM)),
            now: 0,
            next_id: 0,
            busy: 0,
            rr_cursor: 0,
            armed_flush: None,
            recal_pending: 0,
            recals_done: 0,
            canary_pending: 0,
            canaries_done: 0,
            probe_backlog: cfg.probes.map_or(0, |p| p.total),
            probes_done: 0,
            probe_window: (0, 0),
            armed_probe_wake: None,
            hangs: 0,
            batches: 0,
            batch_requests: 0,
            last_completion_ns: 0,
            chip_queries: None,
        }
    }

    fn run(mut self, mut backend: Option<&mut ChipBackend<'_>>) -> ServingReport {
        if backend.is_some() {
            self.chip_queries = Some(0);
        }
        // Seed the heap: first arrival per tenant, first recal pass.
        for i in 0..self.gens.len() {
            let t0 = self.gens[i].next_after(0);
            if t0 < self.cfg.duration_ns {
                self.heap.schedule(t0, Ev::Arrival(i));
            }
        }
        if let Some(recal) = self.cfg.recalibration {
            if recal.start_ns < self.cfg.duration_ns {
                self.heap.schedule(recal.start_ns, Ev::Recal);
            }
        }
        if let Some(canary) = self.cfg.canary {
            if canary.start_ns < self.cfg.duration_ns {
                self.heap.schedule(canary.start_ns, Ev::Canary);
            }
        }
        if let Some(probes) = self.cfg.probes {
            if probes.total > 0 && probes.per_window > 0 {
                self.heap.schedule(probes.start_ns, Ev::ProbeWindow);
                self.armed_probe_wake = Some(probes.start_ns);
            }
        }

        while let Some((at, _seq, ev)) = self.heap.pop() {
            debug_assert!(at >= self.now, "virtual time must be monotone");
            self.now = at;
            match ev {
                Ev::Arrival(i) => {
                    self.acc[i].arrivals += 1;
                    let req = ServeRequest {
                        id: self.next_id,
                        tenant: i,
                        submitted_ns: self.now,
                        deadline_ns: self.cfg.tenants[i]
                            .deadline_ns
                            .map_or(NO_DEADLINE, |d| self.now.saturating_add(d)),
                    };
                    self.next_id += 1;
                    let _ = self.queues[i].push(req); // a full queue sheds
                    let next = self.gens[i].next_after(self.now);
                    if next < self.cfg.duration_ns {
                        self.heap.schedule(next, Ev::Arrival(i));
                    }
                }
                Ev::Recal => {
                    self.recal_pending += 1;
                    if let Some(recal) = self.cfg.recalibration {
                        let next = self.now.saturating_add(recal.period_ns);
                        if next < self.cfg.duration_ns {
                            self.heap.schedule(next, Ev::Recal);
                        }
                    }
                }
                Ev::Canary => {
                    self.canary_pending += 1;
                    if let Some(canary) = self.cfg.canary {
                        let next = self.now.saturating_add(canary.period_ns);
                        if next < self.cfg.duration_ns {
                            self.heap.schedule(next, Ev::Canary);
                        }
                    }
                }
                Ev::ProbeWindow => {
                    // A wake-up only: the dispatch pass below re-checks the
                    // backlog against the budget of the window `now` falls
                    // in.
                    self.armed_probe_wake = None;
                }
                Ev::Flush => {
                    // Possibly stale (the batch it guarded already served);
                    // clearing and re-deciding below is always safe.
                    self.armed_flush = None;
                }
                Ev::Done => {
                    debug_assert!(self.busy > 0);
                    self.busy -= 1;
                }
            }
            self.dispatch(&mut backend);
        }
        debug_assert!(self.queues.iter().all(|q| q.is_empty()), "run must drain");
        self.report()
    }

    /// Fills idle workers: recalibration first (it is latency-insensitive
    /// but must not starve), then canary comparison batches (they gate a
    /// promotion decision), then coalesced inference batches; calibration
    /// probes only piggyback into slots the coalescer left idle.
    fn dispatch(&mut self, backend: &mut Option<&mut ChipBackend<'_>>) {
        while self.busy < self.cfg.workers {
            if self.recal_pending > 0 {
                self.recal_pending -= 1;
                self.recals_done += 1;
                let hang = self.cfg.cost.draw_hang_ns(&mut self.svc_rng);
                if hang > 0 {
                    self.hangs += 1;
                }
                let done = self.now + self.cfg.cost.recal_service_ns + hang;
                self.last_completion_ns = self.last_completion_ns.max(done);
                self.busy += 1;
                self.heap.schedule(done, Ev::Done);
                continue;
            }
            if self.canary_pending > 0 {
                let samples = self.cfg.canary.map_or(1, |c| c.samples);
                self.canary_pending -= 1;
                self.canaries_done += 1;
                let hang = self.cfg.cost.draw_hang_ns(&mut self.svc_rng);
                if hang > 0 {
                    self.hangs += 1;
                }
                let done = self.now + self.cfg.cost.service_ns(samples) + hang;
                self.last_completion_ns = self.last_completion_ns.max(done);
                self.busy += 1;
                self.heap.schedule(done, Ev::Done);
                continue;
            }
            let depth: usize = self.queues.iter().map(|q| q.len()).sum();
            let oldest = self.queues.iter().filter_map(|q| q.front_submitted_ns()).min();
            match self.cfg.coalescer.decide(self.now, depth, oldest) {
                DrainDecision::Idle => {
                    if self.try_probe() {
                        continue;
                    }
                    return;
                }
                DrainDecision::WaitUntil(deadline) => {
                    // Arm one flush timer per live deadline; an already
                    // armed earlier timer covers this wait too.
                    if self.armed_flush.is_none_or(|d| deadline < d) {
                        self.heap.schedule(deadline, Ev::Flush);
                        self.armed_flush = Some(deadline);
                    }
                    // The slot would otherwise sit idle until the flush:
                    // probe time for free (the probe may outlast the wait —
                    // that bounded collision is the piggybacking cost).
                    if self.try_probe() {
                        continue;
                    }
                    return;
                }
                DrainDecision::Serve(n) => {
                    let batch = self.drain_round_robin(n);
                    if batch.is_empty() {
                        // Every drained request had already expired (e.g. a
                        // flush timer fired long after the oldest request's
                        // deadline). The queues changed, so re-decide.
                        continue;
                    }
                    let hang = self.cfg.cost.draw_hang_ns(&mut self.svc_rng);
                    if hang > 0 {
                        self.hangs += 1;
                    }
                    let done = self.now + self.cfg.cost.service_ns(batch.len()) + hang;
                    if let Some(b) = backend.as_deref_mut() {
                        let spent = b.serve(batch.len());
                        *self.chip_queries.get_or_insert(0) += spent;
                    }
                    for req in &batch {
                        let acc = &mut self.acc[req.tenant];
                        acc.completed += 1;
                        acc.latencies_ns.push((done - req.submitted_ns) as f64);
                    }
                    self.batches += 1;
                    self.batch_requests += batch.len() as u64;
                    self.last_completion_ns = self.last_completion_ns.max(done);
                    self.busy += 1;
                    self.heap.schedule(done, Ev::Done);
                }
            }
        }
    }

    /// Tries to piggyback one calibration probe into an idle slot. Returns
    /// whether a probe was dispatched. When the backlog is live but this
    /// window's budget is spent, arms a wake-up at the next window opening
    /// so an otherwise-quiet heap still drains the backlog.
    fn try_probe(&mut self) -> bool {
        let Some(p) = self.cfg.probes else { return false };
        if self.probe_backlog == 0 || p.per_window == 0 || self.now < p.start_ns {
            return false;
        }
        let idx = (self.now - p.start_ns) / p.window_ns;
        if idx > self.probe_window.0 {
            self.probe_window = (idx, 0);
        }
        if self.probe_window.1 >= p.per_window {
            let next_window = p.start_ns + (idx + 1).saturating_mul(p.window_ns);
            if self.armed_probe_wake.is_none_or(|t| next_window < t) {
                self.heap.schedule(next_window, Ev::ProbeWindow);
                self.armed_probe_wake = Some(next_window);
            }
            return false;
        }
        self.probe_window.1 += 1;
        self.probe_backlog -= 1;
        self.probes_done += 1;
        // No hang draw: a probe is a single watchdog-guarded measurement,
        // and the real controller retries it outside the serving path.
        let done = self.now + self.cfg.cost.probe_service_ns;
        self.last_completion_ns = self.last_completion_ns.max(done);
        self.busy += 1;
        self.heap.schedule(done, Ev::Done);
        true
    }

    /// Pops up to `n` servable requests, visiting tenant queues round-robin
    /// from a persistent cursor so no tenant's queue monopolizes coalesced
    /// batches. Expiry is checked *at drain time*: a request whose deadline
    /// has passed (e.g. the flush timer fired after it) is dropped and
    /// counted as expired instead of burning a batch slot on an answer its
    /// caller abandoned.
    fn drain_round_robin(&mut self, n: usize) -> Vec<ServeRequest> {
        let tenants = self.queues.len();
        let mut batch = Vec::with_capacity(n);
        'outer: while batch.len() < n {
            for k in 0..tenants {
                let i = (self.rr_cursor + k) % tenants;
                if let Some(req) = self.queues[i].pop_front() {
                    self.rr_cursor = (i + 1) % tenants;
                    if req.expired(self.now) {
                        self.acc[req.tenant].expired += 1;
                    } else {
                        batch.push(req);
                    }
                    continue 'outer;
                }
            }
            break; // every queue empty
        }
        batch
    }

    fn report(self) -> ServingReport {
        let makespan_ns = self.last_completion_ns.max(1);
        let per_tenant: Vec<TenantServingStats> = self
            .cfg
            .tenants
            .iter()
            .zip(&self.acc)
            .zip(&self.queues)
            .map(|((tenant, acc), queue)| {
                TenantServingStats::from_samples(
                    &tenant.name,
                    acc.arrivals,
                    acc.completed,
                    queue.shed(),
                    acc.expired,
                    queue.peak_depth() as u64,
                    &acc.latencies_ns,
                    makespan_ns,
                )
            })
            .collect();
        let all_latencies: Vec<f64> = self
            .acc
            .iter()
            .flat_map(|a| a.latencies_ns.iter().copied())
            .collect();
        let aggregate = TenantServingStats::from_samples(
            "all",
            self.acc.iter().map(|a| a.arrivals).sum(),
            self.acc.iter().map(|a| a.completed).sum(),
            self.queues.iter().map(|q| q.shed()).sum(),
            self.acc.iter().map(|a| a.expired).sum(),
            self.queues.iter().map(|q| q.peak_depth() as u64).max().unwrap_or(0),
            &all_latencies,
            makespan_ns,
        );
        let mean_batch = if self.batches > 0 {
            self.batch_requests as f64 / self.batches as f64
        } else {
            f64::NAN
        };
        ServingReport {
            label: self.cfg.label.clone(),
            root_seed: self.cfg.root_seed,
            duration_ns: self.cfg.duration_ns,
            makespan_ns,
            workers: self.cfg.workers,
            max_batch: self.cfg.coalescer.max_batch,
            max_wait_ns: self.cfg.coalescer.max_wait_ns,
            tenants: per_tenant,
            aggregate,
            batches: self.batches,
            mean_batch,
            hangs: self.hangs,
            recals: self.recals_done,
            probes: self.probes_done,
            canaries: self.canaries_done,
            chip_queries: self.chip_queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg(seed: u64) -> SimConfig {
        SimConfig::new(seed, 20_000_000) // 20 virtual ms
            .with_label("smoke")
            .with_tenant(TenantLoad::new(
                "alice",
                ArrivalProcess::Poisson { rate_hz: 60_000.0 },
            ))
            .with_tenant(TenantLoad::new(
                "bob",
                ArrivalProcess::Bursty {
                    on_rate_hz: 120_000.0,
                    off_rate_hz: 5_000.0,
                    mean_on_ns: 2_000_000.0,
                    mean_off_ns: 2_000_000.0,
                },
            ))
    }

    /// Regression test for the stream-seed derivation: stream 0 must not
    /// degenerate to the root, and no stream may collide with another
    /// stream's seed under a shifted root (the old `root ^ stream·γ`
    /// pre-mix had `derive_seed(r ^ s·γ, 0) == derive_seed(r, s)` for
    /// every root `r` and stream `s`).
    #[test]
    fn stream_seeds_are_distinct_and_uncorrelated_with_root() {
        const OLD_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
        let streams = [
            0u64,
            ARRIVAL_STREAM,
            ARRIVAL_STREAM + 1,
            ARRIVAL_STREAM + 7,
            SERVICE_STREAM,
            INPUT_STREAM,
        ];
        for root in [0u64, 1, u64::MAX] {
            let seeds: Vec<u64> = streams.iter().map(|&s| derive_seed(root, s)).collect();
            for (i, &seed) in seeds.iter().enumerate() {
                assert_ne!(seed, root, "stream {:#x} echoed root {root:#x}", streams[i]);
                for (j, &other) in seeds.iter().enumerate().skip(i + 1) {
                    assert_ne!(
                        seed, other,
                        "streams {:#x} and {:#x} collide under root {root:#x}",
                        streams[i], streams[j]
                    );
                }
            }
            // The cross-stream collision family of the old derivation:
            // stream 0 under a γ-shifted root must NOT reproduce stream s
            // under the original root.
            for &s in &streams[1..] {
                assert_ne!(
                    derive_seed(root ^ s.wrapping_mul(OLD_GAMMA), 0),
                    derive_seed(root, s),
                    "stream 0 under a shifted root collides with stream {s:#x}"
                );
            }
        }
    }

    #[test]
    fn conserves_requests() {
        let report = run(&smoke_cfg(11));
        for t in report.tenants.iter().chain([&report.aggregate]) {
            assert_eq!(
                t.arrivals,
                t.completed + t.shed + t.expired,
                "tenant {}: every arrival is served, shed, or expired",
                t.tenant
            );
        }
        assert!(report.aggregate.completed > 0);
        assert_eq!(report.aggregate.expired, 0, "no deadlines configured");
        // Uncoalesced: one request per dispatch.
        assert_eq!(report.aggregate.completed, report.batches);
    }

    #[test]
    fn expired_requests_are_dropped_at_drain_not_served() {
        // One slow worker under overload with a tight deadline: requests
        // queue far longer than 300 us, so drains must drop them as
        // expired instead of serving answers their callers abandoned.
        let strict = SimConfig::new(17, 20_000_000)
            .with_tenant(
                TenantLoad::new("dl", ArrivalProcess::Poisson { rate_hz: 2_500_000.0 })
                    .with_deadline_ns(300_000),
            )
            .with_coalescer(CoalescePolicy::new(16, 100_000));
        let report = run(&strict);
        assert!(report.aggregate.expired > 0, "overload must expire requests");
        assert_eq!(
            report.aggregate.arrivals,
            report.aggregate.completed + report.aggregate.shed + report.aggregate.expired
        );
        // Every latency actually recorded beat its deadline: p999 of the
        // *served* requests is bounded by the relative deadline (service
        // starts before expiry; latency counts completion, so allow one
        // full-batch service on top).
        let ceiling = 300_000.0 + (7_400 + 16 * 250) as f64;
        assert!(
            report.aggregate.p999_ns <= ceiling,
            "served requests must have been drained before expiry: p999 {}",
            report.aggregate.p999_ns
        );
        // Bitwise replay holds with deadlines in play.
        assert_eq!(report.to_json(), run(&strict).to_json());
    }

    #[test]
    fn identical_seeds_replay_bitwise() {
        let a = run(&smoke_cfg(42)).to_json();
        let b = run(&smoke_cfg(42)).to_json();
        assert_eq!(a, b);
        let c = run(&smoke_cfg(43)).to_json();
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn coalescing_amortizes_under_overload() {
        // Offered load ~4x one worker's uncoalesced capacity
        // (capacity ≈ 1e9/7650 ≈ 130k rps at the calibrated model).
        let overload = |coalescer| {
            let cfg = SimConfig::new(5, 50_000_000)
                .with_tenant(
                    TenantLoad::new("flood", ArrivalProcess::Poisson { rate_hz: 500_000.0 })
                        .with_queue_cap(512),
                )
                .with_coalescer(coalescer);
            run(&cfg)
        };
        let un = overload(CoalescePolicy::uncoalesced());
        let co = overload(CoalescePolicy::new(16, 100_000));
        assert!(
            co.aggregate.throughput_rps >= 2.0 * un.aggregate.throughput_rps,
            "coalesced {} rps vs uncoalesced {} rps",
            co.aggregate.throughput_rps,
            un.aggregate.throughput_rps
        );
        assert!(co.mean_batch > 4.0, "mean batch {}", co.mean_batch);
        assert!(
            co.aggregate.p99_ns <= un.aggregate.p99_ns,
            "under overload, higher drain rate must not worsen p99: {} vs {}",
            co.aggregate.p99_ns,
            un.aggregate.p99_ns
        );
    }

    #[test]
    fn max_wait_bounds_partial_batch_latency() {
        // Trickle traffic far below one batch per deadline: every request
        // is served by a deadline flush, so p50 ≈ max_wait + service.
        let cfg = SimConfig::new(9, 50_000_000)
            .with_tenant(TenantLoad::new(
                "trickle",
                ArrivalProcess::Poisson { rate_hz: 2_000.0 },
            ))
            .with_coalescer(CoalescePolicy::new(64, 200_000));
        let report = run(&cfg);
        assert!(report.aggregate.completed > 50);
        let ceiling = 200_000.0 + 64.0 * 250.0 + 7_400.0;
        assert!(
            report.aggregate.p50_ns <= ceiling,
            "p50 {} must be bounded by the flush deadline + service",
            report.aggregate.p50_ns
        );
        assert!(
            report.aggregate.p50_ns >= 100_000.0,
            "trickle requests should actually wait near the deadline, p50 {}",
            report.aggregate.p50_ns
        );
    }

    #[test]
    fn tiny_queues_shed_under_overload() {
        let cfg = SimConfig::new(3, 10_000_000)
            .with_tenant(
                TenantLoad::new("flood", ArrivalProcess::Poisson { rate_hz: 600_000.0 })
                    .with_queue_cap(8),
            );
        let report = run(&cfg);
        assert!(report.aggregate.shed > 0, "cap 8 under 600k rps must shed");
        assert_eq!(
            report.aggregate.arrivals,
            report.aggregate.completed + report.aggregate.shed
        );
        assert!(report.aggregate.peak_queue_depth <= 8);
    }

    #[test]
    fn recalibration_steals_capacity() {
        let base = smoke_cfg(21);
        let with_recal = smoke_cfg(21).with_recalibration(RecalTraffic {
            start_ns: 1_000_000,
            period_ns: 5_000_000,
        });
        let a = run(&base);
        let b = run(&with_recal);
        assert_eq!(a.recals, 0);
        assert_eq!(b.recals, 4, "20 ms window, first at 1 ms, every 5 ms");
        assert!(
            b.aggregate.p99_ns >= a.aggregate.p99_ns,
            "recal passes must not improve inference latency: {} vs {}",
            b.aggregate.p99_ns,
            a.aggregate.p99_ns
        );
    }

    #[test]
    fn probe_budget_bounds_the_latency_cost() {
        // A full drift-recalibration sweep piggybacked behind live load.
        // Probes only take slots the coalescer left idle, so the p99 hit
        // is bounded by the window budget; an unbudgeted flood (everything
        // in one window) hurts the tail strictly more.
        let sweep = 400u64;
        let with_budget = |per_window: u32, window_ns: u64| {
            let cfg = smoke_cfg(55)
                .with_coalescer(CoalescePolicy::new(16, 100_000))
                .with_probes(ProbeTraffic {
                    start_ns: 500_000,
                    total: sweep,
                    per_window,
                    window_ns,
                });
            run(&cfg)
        };
        let base = run(&smoke_cfg(55).with_coalescer(CoalescePolicy::new(16, 100_000)));
        let budgeted = with_budget(4, 500_000);
        let flood = with_budget(sweep as u32, 1 << 40);
        assert_eq!(base.probes, 0);
        assert_eq!(budgeted.probes, sweep, "the whole sweep must complete");
        assert_eq!(flood.probes, sweep);
        assert!(
            budgeted.aggregate.p99_ns <= flood.aggregate.p99_ns,
            "budgeted probes must not hurt the tail more than a flood: {} vs {}",
            budgeted.aggregate.p99_ns,
            flood.aggregate.p99_ns
        );
        // The budgeted run keeps p99 within 1.5x of the probe-free
        // baseline — the ISSUE's online-recalibration latency bound.
        assert!(
            budgeted.aggregate.p99_ns <= 1.5 * base.aggregate.p99_ns,
            "budgeted p99 {} vs baseline {}",
            budgeted.aggregate.p99_ns,
            base.aggregate.p99_ns
        );
        // Inference conservation is untouched by probe traffic.
        assert_eq!(
            budgeted.aggregate.arrivals,
            budgeted.aggregate.completed + budgeted.aggregate.shed
        );
    }

    #[test]
    fn probe_backlog_drains_even_on_a_quiet_farm() {
        // No inference traffic beyond a trickle: the window wake-ups alone
        // must walk the whole backlog (7 probes, 2 per 1 ms window).
        let cfg = SimConfig::new(8, 10_000_000)
            .with_tenant(TenantLoad::new(
                "trickle",
                ArrivalProcess::Poisson { rate_hz: 500.0 },
            ))
            .with_probes(ProbeTraffic {
                start_ns: 0,
                total: 7,
                per_window: 2,
                window_ns: 1_000_000,
            });
        let report = run(&cfg);
        assert_eq!(report.probes, 7);
        // 7 probes at 2/window need 4 windows; the last begins at 3 ms.
        assert!(report.makespan_ns >= 3_000_000);
    }

    #[test]
    fn canaries_are_periodic_and_replay_bitwise() {
        let cfg = smoke_cfg(63).with_canary(CanaryTraffic {
            start_ns: 2_000_000,
            period_ns: 5_000_000,
            samples: 32,
        });
        let a = run(&cfg);
        assert_eq!(a.canaries, 4, "20 ms window, first at 2 ms, every 5 ms");
        assert_eq!(a.to_json(), run(&cfg).to_json());
        // Canary batches consume worker time, so they cannot improve p99.
        let base = run(&smoke_cfg(63));
        assert!(a.aggregate.p99_ns >= base.aggregate.p99_ns);
    }

    #[test]
    fn hangs_inflate_the_tail() {
        let mut calm = smoke_cfg(33);
        calm.label = "calm".into();
        let mut hangy = smoke_cfg(33);
        hangy.cost = hangy.cost.with_hangs(0.01, 3_000_000);
        hangy.label = "hangy".into();
        let a = run(&calm);
        let b = run(&hangy);
        assert_eq!(a.hangs, 0);
        assert!(b.hangs > 0);
        assert!(
            b.aggregate.p999_ns > a.aggregate.p999_ns,
            "1% 3ms hangs must be visible at p999: {} vs {}",
            b.aggregate.p999_ns,
            a.aggregate.p999_ns
        );
    }
}
