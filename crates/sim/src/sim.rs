//! The discrete-event serving simulator.
//!
//! One run is a pure function of a [`SimConfig`]: arrivals, dispatch
//! decisions, service times, and fault hangs all derive from RNG streams
//! seeded from the config's root seed, and all timing is *virtual*
//! nanoseconds advanced by the event heap — the simulator never reads a
//! clock. Identical config ⇒ byte-identical [`ServingReport`], on any
//! host, at any `PHOTON_THREADS` setting.
//!
//! The model: `workers` interchangeable chip slots serve two traffic
//! classes — open-loop inference requests from per-tenant bounded queues,
//! and periodic background recalibration passes (which own a worker for
//! [`CostModel::recal_service_ns`], the way `photon-calib`'s drift
//! recalibration owns the chip). An idle worker asks the
//! [`CoalescePolicy`] whether to drain a microbatch now, wait for the
//! flush deadline, or idle; each dispatch is charged virtual time from the
//! calibrated [`CostModel`]. Optionally, every dispatch is *also* executed
//! on a real [`FabricatedChip`] through the pinned serving path
//! ([`run_on_chip`]), which keeps the simulator honest: the chip's query
//! counter must reconcile exactly with the simulated completion count.

use photon_farm::{CoalescePolicy, DrainDecision, RequestQueue, ServeRequest};
use photon_linalg::CVector;
use photon_photonics::{BatchScratch, FabricatedChip};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arrivals::{ArrivalGen, ArrivalProcess};
use crate::cost::CostModel;
use crate::heap::EventHeap;
use crate::report::{ServingReport, TenantServingStats};

/// One tenant's offered load.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Tenant name (reporting only).
    pub name: String,
    /// The tenant's arrival process.
    pub process: ArrivalProcess,
    /// Bound on the tenant's request queue; arrivals beyond it are shed.
    pub queue_cap: usize,
}

impl TenantLoad {
    /// A tenant with a queue bound of 4096 requests.
    pub fn new(name: &str, process: ArrivalProcess) -> Self {
        TenantLoad {
            name: name.to_string(),
            process,
            queue_cap: 4096,
        }
    }

    /// Overrides the queue bound.
    #[must_use]
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }
}

/// Background recalibration traffic: one pass every `period_ns`, first
/// pass at `start_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecalTraffic {
    /// Virtual time of the first pass.
    pub start_ns: u64,
    /// Pass period in virtual nanoseconds.
    pub period_ns: u64,
}

/// Full specification of one simulation run. Every field participates in
/// the deterministic replay contract.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Root seed; every RNG stream in the run derives from it.
    pub root_seed: u64,
    /// Arrival window in virtual nanoseconds. Arrivals stop here; the run
    /// continues until the queues drain.
    pub duration_ns: u64,
    /// Interchangeable chip-serving workers.
    pub workers: usize,
    /// Microbatch coalescing policy for the serving path.
    pub coalescer: CoalescePolicy,
    /// Virtual-time service cost model.
    pub cost: CostModel,
    /// Offered load, one entry per tenant.
    pub tenants: Vec<TenantLoad>,
    /// Optional background recalibration traffic.
    pub recalibration: Option<RecalTraffic>,
    /// Free-form label carried into the report.
    pub label: String,
}

impl SimConfig {
    /// A single-worker, uncoalesced config with the calibrated 8x8 cost
    /// model and no tenants; add load with [`Self::with_tenant`].
    pub fn new(root_seed: u64, duration_ns: u64) -> Self {
        SimConfig {
            root_seed,
            duration_ns,
            workers: 1,
            coalescer: CoalescePolicy::uncoalesced(),
            cost: CostModel::calibrated_8x8(),
            tenants: Vec::new(),
            recalibration: None,
            label: String::new(),
        }
    }

    /// Adds a tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantLoad) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Sets the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Sets the coalescing policy.
    #[must_use]
    pub fn with_coalescer(mut self, policy: CoalescePolicy) -> Self {
        self.coalescer = policy;
        self
    }

    /// Sets the cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Enables background recalibration traffic.
    #[must_use]
    pub fn with_recalibration(mut self, recal: RecalTraffic) -> Self {
        self.recalibration = Some(recal);
        self
    }

    /// Sets the report label.
    #[must_use]
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }
}

/// Runs the simulation purely against the cost model (no chip attached).
pub fn run(cfg: &SimConfig) -> ServingReport {
    Simulator::new(cfg).run(None)
}

/// Runs the simulation with every coalesced dispatch *also* executed on
/// `chip` through [`FabricatedChip::serve_pinned_batch_into`]. Virtual
/// timing still comes from the cost model (wall time never leaks in), but
/// the chip's query counter must reconcile exactly with the simulated
/// completion count — the report records it in
/// [`ServingReport::chip_queries`].
///
/// # Panics
///
/// Panics when `chip` has no pinned compile base — pin the deployment
/// theta first; serving is defined as evaluation at the pinned base.
pub fn run_on_chip(cfg: &SimConfig, chip: &FabricatedChip) -> ServingReport {
    assert!(
        chip.has_pinned_base(),
        "serving requires a pinned compile base; call chip.pin_compile_base(theta) first"
    );
    let mut backend = ChipBackend::new(cfg, chip);
    Simulator::new(cfg).run(Some(&mut backend))
}

/// Derives a child seed for an independent RNG stream (SplitMix64-style
/// mixing, so adjacent stream ids land far apart).
fn derive_seed(root: u64, stream: u64) -> u64 {
    let mut z = root ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// Stream-id tags for seed derivation (arbitrary distinct constants; tenant
// arrival streams use ARRIVAL_STREAM + tenant index).
const ARRIVAL_STREAM: u64 = 0x41;
const SERVICE_STREAM: u64 = 0xFA11;
const INPUT_STREAM: u64 = 0x1122;

/// Executes dispatches on a real chip via the pinned serving path.
struct ChipBackend<'c> {
    chip: &'c FabricatedChip,
    scratch: BatchScratch,
    /// A small pool of pre-generated inputs cycled through by dispatch
    /// order (seeded from the root seed, so chip results are replayable
    /// too).
    inputs: Vec<CVector>,
    cursor: usize,
}

impl<'c> ChipBackend<'c> {
    fn new(cfg: &SimConfig, chip: &'c FabricatedChip) -> Self {
        let dim = chip.input_dim();
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.root_seed, INPUT_STREAM));
        let pool = cfg.coalescer.max_batch.max(16);
        let inputs = (0..pool)
            .map(|_| photon_linalg::random::normal_cvector(dim, &mut rng))
            .collect();
        ChipBackend {
            chip,
            scratch: BatchScratch::new(),
            inputs,
            cursor: 0,
        }
    }

    /// Serves one coalesced batch of `len` requests; returns the chip
    /// queries spent (== `len`).
    fn serve(&mut self, len: usize) -> u64 {
        let refs: Vec<&CVector> = (0..len)
            .map(|k| &self.inputs[(self.cursor + k) % self.inputs.len()])
            .collect();
        self.cursor = (self.cursor + len) % self.inputs.len();
        let out = self
            .chip
            .serve_pinned_batch_into(&refs, &mut self.scratch)
            .expect("pinned base checked at run_on_chip entry");
        debug_assert_eq!(out.len(), len);
        len as u64
    }
}

/// Simulation events. Workers are interchangeable, so a completion does
/// not need to name one — it frees a slot.
#[derive(Debug)]
enum Ev {
    /// A request from tenant `i` arrives.
    Arrival(usize),
    /// A background recalibration pass becomes due.
    Recal,
    /// A coalescer flush deadline fires (possibly stale — harmless).
    Flush,
    /// A dispatch finishes, freeing a worker slot.
    Done,
}

/// Per-tenant accumulation during a run.
struct TenantAcc {
    arrivals: u64,
    completed: u64,
    latencies_ns: Vec<f64>,
}

struct Simulator<'a> {
    cfg: &'a SimConfig,
    heap: EventHeap<Ev>,
    gens: Vec<ArrivalGen>,
    queues: Vec<RequestQueue>,
    acc: Vec<TenantAcc>,
    svc_rng: StdRng,
    now: u64,
    next_id: u64,
    busy: usize,
    rr_cursor: usize,
    armed_flush: Option<u64>,
    recal_pending: u64,
    recals_done: u64,
    hangs: u64,
    batches: u64,
    batch_requests: u64,
    last_completion_ns: u64,
    chip_queries: Option<u64>,
}

impl<'a> Simulator<'a> {
    fn new(cfg: &'a SimConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(!cfg.tenants.is_empty(), "need at least one tenant");
        let gens = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                ArrivalGen::new(t.process, derive_seed(cfg.root_seed, ARRIVAL_STREAM + i as u64))
            })
            .collect();
        let queues = cfg.tenants.iter().map(|t| RequestQueue::new(t.queue_cap)).collect();
        let acc = cfg
            .tenants
            .iter()
            .map(|_| TenantAcc {
                arrivals: 0,
                completed: 0,
                latencies_ns: Vec::new(),
            })
            .collect();
        Simulator {
            cfg,
            heap: EventHeap::new(),
            gens,
            queues,
            acc,
            svc_rng: StdRng::seed_from_u64(derive_seed(cfg.root_seed, SERVICE_STREAM)),
            now: 0,
            next_id: 0,
            busy: 0,
            rr_cursor: 0,
            armed_flush: None,
            recal_pending: 0,
            recals_done: 0,
            hangs: 0,
            batches: 0,
            batch_requests: 0,
            last_completion_ns: 0,
            chip_queries: None,
        }
    }

    fn run(mut self, mut backend: Option<&mut ChipBackend<'_>>) -> ServingReport {
        if backend.is_some() {
            self.chip_queries = Some(0);
        }
        // Seed the heap: first arrival per tenant, first recal pass.
        for i in 0..self.gens.len() {
            let t0 = self.gens[i].next_after(0);
            if t0 < self.cfg.duration_ns {
                self.heap.schedule(t0, Ev::Arrival(i));
            }
        }
        if let Some(recal) = self.cfg.recalibration {
            if recal.start_ns < self.cfg.duration_ns {
                self.heap.schedule(recal.start_ns, Ev::Recal);
            }
        }

        while let Some((at, _seq, ev)) = self.heap.pop() {
            debug_assert!(at >= self.now, "virtual time must be monotone");
            self.now = at;
            match ev {
                Ev::Arrival(i) => {
                    self.acc[i].arrivals += 1;
                    let req = ServeRequest {
                        id: self.next_id,
                        tenant: i,
                        submitted_ns: self.now,
                    };
                    self.next_id += 1;
                    let _ = self.queues[i].push(req); // a full queue sheds
                    let next = self.gens[i].next_after(self.now);
                    if next < self.cfg.duration_ns {
                        self.heap.schedule(next, Ev::Arrival(i));
                    }
                }
                Ev::Recal => {
                    self.recal_pending += 1;
                    if let Some(recal) = self.cfg.recalibration {
                        let next = self.now.saturating_add(recal.period_ns);
                        if next < self.cfg.duration_ns {
                            self.heap.schedule(next, Ev::Recal);
                        }
                    }
                }
                Ev::Flush => {
                    // Possibly stale (the batch it guarded already served);
                    // clearing and re-deciding below is always safe.
                    self.armed_flush = None;
                }
                Ev::Done => {
                    debug_assert!(self.busy > 0);
                    self.busy -= 1;
                }
            }
            self.dispatch(&mut backend);
        }
        debug_assert!(self.queues.iter().all(|q| q.is_empty()), "run must drain");
        self.report()
    }

    /// Fills idle workers: recalibration first (it is latency-insensitive
    /// but must not starve), then coalesced inference batches.
    fn dispatch(&mut self, backend: &mut Option<&mut ChipBackend<'_>>) {
        while self.busy < self.cfg.workers {
            if self.recal_pending > 0 {
                self.recal_pending -= 1;
                self.recals_done += 1;
                let hang = self.cfg.cost.draw_hang_ns(&mut self.svc_rng);
                if hang > 0 {
                    self.hangs += 1;
                }
                let done = self.now + self.cfg.cost.recal_service_ns + hang;
                self.last_completion_ns = self.last_completion_ns.max(done);
                self.busy += 1;
                self.heap.schedule(done, Ev::Done);
                continue;
            }
            let depth: usize = self.queues.iter().map(|q| q.len()).sum();
            let oldest = self.queues.iter().filter_map(|q| q.front_submitted_ns()).min();
            match self.cfg.coalescer.decide(self.now, depth, oldest) {
                DrainDecision::Idle => return,
                DrainDecision::WaitUntil(deadline) => {
                    // Arm one flush timer per live deadline; an already
                    // armed earlier timer covers this wait too.
                    if self.armed_flush.is_none_or(|d| deadline < d) {
                        self.heap.schedule(deadline, Ev::Flush);
                        self.armed_flush = Some(deadline);
                    }
                    return;
                }
                DrainDecision::Serve(n) => {
                    let batch = self.drain_round_robin(n);
                    debug_assert!(!batch.is_empty());
                    let hang = self.cfg.cost.draw_hang_ns(&mut self.svc_rng);
                    if hang > 0 {
                        self.hangs += 1;
                    }
                    let done = self.now + self.cfg.cost.service_ns(batch.len()) + hang;
                    if let Some(b) = backend.as_deref_mut() {
                        let spent = b.serve(batch.len());
                        *self.chip_queries.get_or_insert(0) += spent;
                    }
                    for req in &batch {
                        let acc = &mut self.acc[req.tenant];
                        acc.completed += 1;
                        acc.latencies_ns.push((done - req.submitted_ns) as f64);
                    }
                    self.batches += 1;
                    self.batch_requests += batch.len() as u64;
                    self.last_completion_ns = self.last_completion_ns.max(done);
                    self.busy += 1;
                    self.heap.schedule(done, Ev::Done);
                }
            }
        }
    }

    /// Pops up to `n` requests, visiting tenant queues round-robin from a
    /// persistent cursor so no tenant's queue monopolizes coalesced
    /// batches.
    fn drain_round_robin(&mut self, n: usize) -> Vec<ServeRequest> {
        let tenants = self.queues.len();
        let mut batch = Vec::with_capacity(n);
        'outer: while batch.len() < n {
            for k in 0..tenants {
                let i = (self.rr_cursor + k) % tenants;
                if let Some(req) = self.queues[i].pop_front() {
                    batch.push(req);
                    self.rr_cursor = (i + 1) % tenants;
                    continue 'outer;
                }
            }
            break; // every queue empty
        }
        batch
    }

    fn report(self) -> ServingReport {
        let makespan_ns = self.last_completion_ns.max(1);
        let per_tenant: Vec<TenantServingStats> = self
            .cfg
            .tenants
            .iter()
            .zip(&self.acc)
            .zip(&self.queues)
            .map(|((tenant, acc), queue)| {
                TenantServingStats::from_samples(
                    &tenant.name,
                    acc.arrivals,
                    acc.completed,
                    queue.shed(),
                    queue.peak_depth() as u64,
                    &acc.latencies_ns,
                    makespan_ns,
                )
            })
            .collect();
        let all_latencies: Vec<f64> = self
            .acc
            .iter()
            .flat_map(|a| a.latencies_ns.iter().copied())
            .collect();
        let aggregate = TenantServingStats::from_samples(
            "all",
            self.acc.iter().map(|a| a.arrivals).sum(),
            self.acc.iter().map(|a| a.completed).sum(),
            self.queues.iter().map(|q| q.shed()).sum(),
            self.queues.iter().map(|q| q.peak_depth() as u64).max().unwrap_or(0),
            &all_latencies,
            makespan_ns,
        );
        let mean_batch = if self.batches > 0 {
            self.batch_requests as f64 / self.batches as f64
        } else {
            f64::NAN
        };
        ServingReport {
            label: self.cfg.label.clone(),
            root_seed: self.cfg.root_seed,
            duration_ns: self.cfg.duration_ns,
            makespan_ns,
            workers: self.cfg.workers,
            max_batch: self.cfg.coalescer.max_batch,
            max_wait_ns: self.cfg.coalescer.max_wait_ns,
            tenants: per_tenant,
            aggregate,
            batches: self.batches,
            mean_batch,
            hangs: self.hangs,
            recals: self.recals_done,
            chip_queries: self.chip_queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg(seed: u64) -> SimConfig {
        SimConfig::new(seed, 20_000_000) // 20 virtual ms
            .with_label("smoke")
            .with_tenant(TenantLoad::new(
                "alice",
                ArrivalProcess::Poisson { rate_hz: 60_000.0 },
            ))
            .with_tenant(TenantLoad::new(
                "bob",
                ArrivalProcess::Bursty {
                    on_rate_hz: 120_000.0,
                    off_rate_hz: 5_000.0,
                    mean_on_ns: 2_000_000.0,
                    mean_off_ns: 2_000_000.0,
                },
            ))
    }

    #[test]
    fn conserves_requests() {
        let report = run(&smoke_cfg(11));
        for t in report.tenants.iter().chain([&report.aggregate]) {
            assert_eq!(
                t.arrivals,
                t.completed + t.shed,
                "tenant {}: every arrival is served or shed",
                t.tenant
            );
        }
        assert!(report.aggregate.completed > 0);
        // Uncoalesced: one request per dispatch.
        assert_eq!(report.aggregate.completed, report.batches);
    }

    #[test]
    fn identical_seeds_replay_bitwise() {
        let a = run(&smoke_cfg(42)).to_json();
        let b = run(&smoke_cfg(42)).to_json();
        assert_eq!(a, b);
        let c = run(&smoke_cfg(43)).to_json();
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn coalescing_amortizes_under_overload() {
        // Offered load ~4x one worker's uncoalesced capacity
        // (capacity ≈ 1e9/7650 ≈ 130k rps at the calibrated model).
        let overload = |coalescer| {
            let cfg = SimConfig::new(5, 50_000_000)
                .with_tenant(
                    TenantLoad::new("flood", ArrivalProcess::Poisson { rate_hz: 500_000.0 })
                        .with_queue_cap(512),
                )
                .with_coalescer(coalescer);
            run(&cfg)
        };
        let un = overload(CoalescePolicy::uncoalesced());
        let co = overload(CoalescePolicy::new(16, 100_000));
        assert!(
            co.aggregate.throughput_rps >= 2.0 * un.aggregate.throughput_rps,
            "coalesced {} rps vs uncoalesced {} rps",
            co.aggregate.throughput_rps,
            un.aggregate.throughput_rps
        );
        assert!(co.mean_batch > 4.0, "mean batch {}", co.mean_batch);
        assert!(
            co.aggregate.p99_ns <= un.aggregate.p99_ns,
            "under overload, higher drain rate must not worsen p99: {} vs {}",
            co.aggregate.p99_ns,
            un.aggregate.p99_ns
        );
    }

    #[test]
    fn max_wait_bounds_partial_batch_latency() {
        // Trickle traffic far below one batch per deadline: every request
        // is served by a deadline flush, so p50 ≈ max_wait + service.
        let cfg = SimConfig::new(9, 50_000_000)
            .with_tenant(TenantLoad::new(
                "trickle",
                ArrivalProcess::Poisson { rate_hz: 2_000.0 },
            ))
            .with_coalescer(CoalescePolicy::new(64, 200_000));
        let report = run(&cfg);
        assert!(report.aggregate.completed > 50);
        let ceiling = 200_000.0 + 64.0 * 250.0 + 7_400.0;
        assert!(
            report.aggregate.p50_ns <= ceiling,
            "p50 {} must be bounded by the flush deadline + service",
            report.aggregate.p50_ns
        );
        assert!(
            report.aggregate.p50_ns >= 100_000.0,
            "trickle requests should actually wait near the deadline, p50 {}",
            report.aggregate.p50_ns
        );
    }

    #[test]
    fn tiny_queues_shed_under_overload() {
        let cfg = SimConfig::new(3, 10_000_000)
            .with_tenant(
                TenantLoad::new("flood", ArrivalProcess::Poisson { rate_hz: 600_000.0 })
                    .with_queue_cap(8),
            );
        let report = run(&cfg);
        assert!(report.aggregate.shed > 0, "cap 8 under 600k rps must shed");
        assert_eq!(
            report.aggregate.arrivals,
            report.aggregate.completed + report.aggregate.shed
        );
        assert!(report.aggregate.peak_queue_depth <= 8);
    }

    #[test]
    fn recalibration_steals_capacity() {
        let base = smoke_cfg(21);
        let with_recal = smoke_cfg(21).with_recalibration(RecalTraffic {
            start_ns: 1_000_000,
            period_ns: 5_000_000,
        });
        let a = run(&base);
        let b = run(&with_recal);
        assert_eq!(a.recals, 0);
        assert_eq!(b.recals, 4, "20 ms window, first at 1 ms, every 5 ms");
        assert!(
            b.aggregate.p99_ns >= a.aggregate.p99_ns,
            "recal passes must not improve inference latency: {} vs {}",
            b.aggregate.p99_ns,
            a.aggregate.p99_ns
        );
    }

    #[test]
    fn hangs_inflate_the_tail() {
        let mut calm = smoke_cfg(33);
        calm.label = "calm".into();
        let mut hangy = smoke_cfg(33);
        hangy.cost = hangy.cost.with_hangs(0.01, 3_000_000);
        hangy.label = "hangy".into();
        let a = run(&calm);
        let b = run(&hangy);
        assert_eq!(a.hangs, 0);
        assert!(b.hangs > 0);
        assert!(
            b.aggregate.p999_ns > a.aggregate.p999_ns,
            "1% 3ms hangs must be visible at p999: {} vs {}",
            b.aggregate.p999_ns,
            a.aggregate.p999_ns
        );
    }
}
