//! The calibrated service-time model.
//!
//! The simulator does not execute forwards while simulating — it charges
//! each dispatch a virtual duration from this model, which is *calibrated*
//! against the repo's own measured benchmarks so the simulated numbers
//! mean something. A dispatch of `b` coalesced requests costs
//!
//! ```text
//! service_ns(b) = compile_ns + b · per_sample_ns   (+ hang_ns, rarely)
//! ```
//!
//! i.e. a fixed per-call cost (plan setup + the compiled-unitary walk /
//! pin commit) amortized over the batch, plus a linear per-sample GEMM
//! cost. That two-term shape is exactly why microbatch coalescing pays:
//! at `b = 1` every request carries the full per-call cost, at `b = 16`
//! it carries 1/16th of it.

use photon_photonics::ServingTier;
use rand::rngs::StdRng;
use rand::Rng;

/// Virtual-time cost model for one worker serving one chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost per `forward_batch_into` call (plan setup, pinned-base
    /// commit / compiled walk), in virtual nanoseconds.
    pub compile_ns: u64,
    /// Incremental cost per request in a batch (multi-RHS GEMM column),
    /// in virtual nanoseconds.
    pub per_sample_ns: u64,
    /// Cost of one background recalibration pass (it owns the worker for
    /// the duration), in virtual nanoseconds.
    pub recal_service_ns: u64,
    /// Cost of one piggybacked calibration probe — a single-input
    /// measurement against the live chip, dispatched into an idle
    /// microbatch slot — in virtual nanoseconds.
    pub probe_service_ns: u64,
    /// Probability that a dispatch trips a fault-induced lab-link hang.
    pub hang_prob: f64,
    /// Extra latency a hang adds to the dispatch it strikes.
    pub hang_ns: u64,
}

impl CostModel {
    /// Constants calibrated from `BENCH_gemm.json` on the 8x8 Clements
    /// mesh (single thread, compiled path): 364_865 ns measured for 32
    /// probe-compiles × 16-sample batches ≈ 11_400 ns per call, of which
    /// the batched GEMM accounts for ≈250 ns/sample — leaving ≈7_400 ns
    /// of per-call compile/setup to amortize. See DESIGN.md "Serving
    /// simulator & cost model" for the derivation.
    pub fn calibrated_8x8() -> Self {
        CostModel {
            compile_ns: 7_400,
            per_sample_ns: 250,
            recal_service_ns: 2_000_000,
            // One probe = one fresh compile at the probe setting plus one
            // sample: the same two-term shape as service_ns(1).
            probe_service_ns: 7_650,
            hang_prob: 0.0,
            hang_ns: 0,
        }
    }

    /// Adds fault-induced hangs: each dispatch independently stalls an
    /// extra `hang_ns` with probability `prob` (mirrors the lab-link hang
    /// model in `photon-faults`, at dispatch granularity).
    #[must_use]
    pub fn with_hangs(mut self, prob: f64, hang_ns: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "hang probability {prob}");
        self.hang_prob = prob;
        self.hang_ns = hang_ns;
        self
    }

    /// Overrides the recalibration pass duration.
    #[must_use]
    pub fn with_recal_service_ns(mut self, ns: u64) -> Self {
        self.recal_service_ns = ns;
        self
    }

    /// Overrides the per-probe duration.
    #[must_use]
    pub fn with_probe_service_ns(mut self, ns: u64) -> Self {
        self.probe_service_ns = ns;
        self
    }

    /// Virtual service time of one coalesced dispatch of `batch` requests,
    /// excluding hangs.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch.
    pub fn service_ns(&self, batch: usize) -> u64 {
        assert!(batch >= 1, "cannot serve an empty batch");
        self.compile_ns + batch as u64 * self.per_sample_ns
    }

    /// Draws whether a dispatch hangs, from the caller's dedicated service
    /// RNG stream. Returns the extra nanoseconds (0 almost always).
    pub fn draw_hang_ns(&self, rng: &mut StdRng) -> u64 {
        if self.hang_prob > 0.0 && rng.gen::<f64>() < self.hang_prob {
            self.hang_ns
        } else {
            0
        }
    }
}

/// Tiered extension of [`CostModel`]: the same two-term dispatch cost,
/// divided by a per-tier speedup factor matching the evaluation-tier
/// ladder the brownout controller walks (`f64 → f32 → i16`).
///
/// The f64 tier is the base model verbatim. The f32 factor comes from the
/// repo's own `BENCH_simd.json` (incremental-f32 kernel ≈ 3.57× the f64
/// path on the 8×8 mesh; 3.5 used here). The i16 factor is an estimate —
/// the fixed-point artifact trades the complex-valued GEMM for integer
/// dot products but has no committed benchmark yet, so 5.0 is a
/// deliberately conservative stand-in (documented, not measured).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierCostModel {
    /// The f64 (full-precision) base model; hangs and recal/probe costs
    /// come from here for every tier.
    pub base: CostModel,
    /// Speedup of the f32 SIMD tier over the base.
    pub f32_speedup: f64,
    /// Speedup of the i16 quantized tier over the base.
    pub i16_speedup: f64,
}

impl TierCostModel {
    /// The calibrated 8×8 ladder (see the type-level docs for provenance).
    pub fn calibrated_8x8() -> Self {
        TierCostModel {
            base: CostModel::calibrated_8x8(),
            f32_speedup: 3.5,
            i16_speedup: 5.0,
        }
    }

    /// Builds a tiered model over an explicit base.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= f32_speedup <= i16_speedup` — the ladder must
    /// get strictly cheaper as precision drops, or brownout would be
    /// pointless.
    pub fn new(base: CostModel, f32_speedup: f64, i16_speedup: f64) -> Self {
        assert!(
            1.0 <= f32_speedup && f32_speedup <= i16_speedup,
            "tier speedups must satisfy 1 <= f32 ({f32_speedup}) <= i16 ({i16_speedup})"
        );
        TierCostModel {
            base,
            f32_speedup,
            i16_speedup,
        }
    }

    /// Virtual service time of one dispatch of `batch` requests at `tier`,
    /// excluding hangs. Integer division of the base cost keeps the result
    /// exactly reproducible across hosts; the cost never rounds below 1 ns.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch.
    pub fn service_ns(&self, tier: ServingTier, batch: usize) -> u64 {
        let base = self.base.service_ns(batch);
        let factor = match tier {
            ServingTier::F64 => return base,
            ServingTier::F32 => self.f32_speedup,
            ServingTier::I16 => self.i16_speedup,
        };
        // Scale in integer nanoseconds via a fixed-point factor so the
        // division is bit-exact everywhere.
        let scaled = (base as u128 * 1_000) / (factor * 1_000.0) as u128;
        (scaled as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn tiers_get_monotonically_cheaper() {
        let m = TierCostModel::calibrated_8x8();
        for batch in [1usize, 4, 16, 64] {
            let f64c = m.service_ns(ServingTier::F64, batch);
            let f32c = m.service_ns(ServingTier::F32, batch);
            let i16c = m.service_ns(ServingTier::I16, batch);
            assert!(f64c > f32c && f32c > i16c, "{f64c} > {f32c} > {i16c} at batch {batch}");
            assert_eq!(f64c, m.base.service_ns(batch), "f64 tier is the base verbatim");
        }
        // The f32 factor lands where BENCH_simd says it should.
        let b16 = m.base.service_ns(16);
        assert_eq!(m.service_ns(ServingTier::F32, 16), b16 * 1_000 / 3_500);
        // Degenerate costs never round to zero virtual time.
        let tiny = TierCostModel::new(
            CostModel {
                compile_ns: 1,
                per_sample_ns: 0,
                recal_service_ns: 1,
                probe_service_ns: 1,
                hang_prob: 0.0,
                hang_ns: 0,
            },
            3.5,
            5.0,
        );
        assert_eq!(tiny.service_ns(ServingTier::I16, 1), 1);
    }

    #[test]
    #[should_panic(expected = "speedups")]
    fn inverted_tier_speedups_rejected() {
        let _ = TierCostModel::new(CostModel::calibrated_8x8(), 5.0, 3.5);
    }

    #[test]
    fn batch_amortizes_the_per_call_cost() {
        let m = CostModel::calibrated_8x8();
        let single = m.service_ns(1);
        let batch16 = m.service_ns(16);
        // 16 uncoalesced dispatches pay the per-call cost 16 times.
        assert!(16 * single > 2 * batch16, "{single} vs {batch16}");
        // Per-request cost shrinks monotonically with batch size.
        assert!(batch16 / 16 < single);
        assert_eq!(single, m.compile_ns + m.per_sample_ns);
        assert_eq!(batch16, m.compile_ns + 16 * m.per_sample_ns);
    }

    #[test]
    fn hang_draws_follow_probability_and_seed() {
        let m = CostModel::calibrated_8x8().with_hangs(0.25, 1_000_000);
        let mut rng = StdRng::seed_from_u64(7);
        let hangs = (0..10_000).filter(|_| m.draw_hang_ns(&mut rng) > 0).count();
        assert!((2_000..3_000).contains(&hangs), "got {hangs} hangs");
        // Same seed → identical hang pattern.
        let pattern = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| m.draw_hang_ns(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(pattern(3), pattern(3));
        // Zero probability never consumes entropy pathologically.
        let none = CostModel::calibrated_8x8();
        assert_eq!(none.draw_hang_ns(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn zero_batch_rejected() {
        let _ = CostModel::calibrated_8x8().service_ns(0);
    }
}
