//! # photon-sim
//!
//! Deterministic discrete-event serving simulator for the photon-zo chip
//! farm: the macro-level answer to "what are p50/p99/p999 and throughput
//! when a million requests hit the farm?".
//!
//! The simulator drives seeded open-loop traffic — Poisson, bursty
//! on/off, and diurnal-modulated arrival processes — plus background
//! recalibration passes against the farm's serving path (bounded
//! per-tenant [`photon_farm::RequestQueue`]s drained through the
//! microbatch [`photon_farm::CoalescePolicy`]), charging each dispatch
//! virtual time from a [`CostModel`] calibrated against the repo's own
//! `BENCH_gemm` measurements. Reports carry per-tenant p50/p99/p999
//! latency, throughput, shed counts, and queue high-water marks.
//!
//! Two invariants make the numbers trustworthy:
//!
//! * **Bitwise replay.** All timing is virtual (the crate never reads a
//!   wall clock — CI grep-gates clock reads), every random decision
//!   derives from the config's root seed via independent per-stream RNGs,
//!   and event ties break on scheduling order. Same config ⇒
//!   byte-identical report, regardless of host or `PHOTON_THREADS`.
//! * **Chip reconciliation.** [`run_on_chip`] executes every simulated
//!   dispatch on a real [`photon_photonics::FabricatedChip`] through the
//!   pinned serving path; the chip's query counter must equal the
//!   simulated completion count exactly.
//!
//! ```
//! use photon_sim::{run, ArrivalProcess, SimConfig, TenantLoad};
//! use photon_farm::CoalescePolicy;
//!
//! let cfg = SimConfig::new(7, 10_000_000) // 10 virtual ms
//!     .with_tenant(TenantLoad::new(
//!         "alice",
//!         ArrivalProcess::Poisson { rate_hz: 50_000.0 },
//!     ))
//!     .with_coalescer(CoalescePolicy::new(16, 100_000));
//! let report = run(&cfg);
//! assert_eq!(report.to_json(), run(&cfg).to_json()); // bitwise replay
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod arrivals;
mod cost;
mod heap;
mod report;
mod resilient;
mod sim;

pub use arrivals::{ArrivalGen, ArrivalProcess};
pub use cost::{CostModel, TierCostModel};
pub use heap::EventHeap;
pub use report::{ServingReport, TenantServingStats};
pub use resilient::{
    run_resilient, run_resilient_on_chip, ReplicaSpec, ReplicaStats, ResilienceReport,
    ResilientConfig,
};
pub use sim::{
    run, run_on_chip, CanaryTraffic, ProbeTraffic, RecalTraffic, SimConfig, TenantLoad,
};
