//! Seeded open-loop arrival processes.
//!
//! All three processes are *open-loop*: arrival times are independent of
//! how the servers are doing, which is what makes saturation visible (a
//! closed-loop client slows down when the system does and hides the
//! queueing collapse). Every generator owns a private RNG stream derived
//! from the simulation's root seed, so arrival sequences are bitwise
//! reproducible and independent of how other streams are consumed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An open-loop arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate (exponential inter-arrival
    /// times).
    Poisson {
        /// Mean arrivals per (virtual) second.
        rate_hz: f64,
    },
    /// Two-phase on/off bursts: Poisson arrivals at `on_rate_hz` during
    /// "on" phases and `off_rate_hz` during "off" phases, with
    /// exponentially distributed phase durations. Models flash crowds and
    /// tidal batch traffic.
    Bursty {
        /// Arrival rate during a burst.
        on_rate_hz: f64,
        /// Arrival rate between bursts.
        off_rate_hz: f64,
        /// Mean burst duration in virtual nanoseconds.
        mean_on_ns: f64,
        /// Mean quiet-period duration in virtual nanoseconds.
        mean_off_ns: f64,
    },
    /// Sinusoidally modulated rate `base · (1 + amplitude · sin(2πt/T))`,
    /// sampled by thinning against the peak rate. Models diurnal load.
    Diurnal {
        /// Mean arrival rate over a full period.
        base_rate_hz: f64,
        /// Relative modulation depth in `[0, 1]`.
        amplitude: f64,
        /// Modulation period in virtual nanoseconds.
        period_ns: u64,
    },
}

impl ArrivalProcess {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Diurnal { .. } => "diurnal",
        }
    }
}

/// A seeded generator of arrival instants for one process.
#[derive(Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: StdRng,
    // Bursty phase machine (unused by the other processes).
    phase_on: bool,
    phase_end: f64,
}

impl ArrivalGen {
    /// A generator whose entire arrival sequence is a pure function of
    /// `process` and `seed`.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let phase_end = match process {
            ArrivalProcess::Bursty { mean_on_ns, .. } => exp_sample(&mut rng, mean_on_ns),
            _ => 0.0,
        };
        ArrivalGen {
            process,
            rng,
            phase_on: true,
            phase_end,
        }
    }

    /// The next arrival instant strictly after `now_ns`, or `u64::MAX`
    /// when the process can never produce another arrival (zero rates).
    pub fn next_after(&mut self, now_ns: u64) -> u64 {
        let t = match self.process {
            ArrivalProcess::Poisson { rate_hz } => {
                if rate_hz <= 0.0 {
                    return u64::MAX;
                }
                now_ns as f64 + exp_interval_ns(&mut self.rng, rate_hz)
            }
            ArrivalProcess::Bursty {
                on_rate_hz,
                off_rate_hz,
                mean_on_ns,
                mean_off_ns,
            } => {
                if on_rate_hz <= 0.0 && off_rate_hz <= 0.0 {
                    return u64::MAX;
                }
                let mut t = now_ns as f64;
                loop {
                    let rate = if self.phase_on { on_rate_hz } else { off_rate_hz };
                    if rate > 0.0 {
                        let candidate = t + exp_interval_ns(&mut self.rng, rate);
                        if candidate <= self.phase_end {
                            break candidate;
                        }
                    }
                    // No arrival before the phase flips. By memorylessness,
                    // discarding the overshoot and resampling in the next
                    // phase is exact, not an approximation.
                    t = self.phase_end;
                    self.phase_on = !self.phase_on;
                    let mean = if self.phase_on { mean_on_ns } else { mean_off_ns };
                    self.phase_end = t + exp_sample(&mut self.rng, mean);
                }
            }
            ArrivalProcess::Diurnal {
                base_rate_hz,
                amplitude,
                period_ns,
            } => {
                if base_rate_hz <= 0.0 {
                    return u64::MAX;
                }
                let amp = amplitude.clamp(0.0, 1.0);
                let peak = base_rate_hz * (1.0 + amp);
                // Thinning (Lewis-Shedler): sample the homogeneous peak-rate
                // process, accept each candidate with probability
                // rate(t)/peak.
                let mut t = now_ns as f64;
                loop {
                    t += exp_interval_ns(&mut self.rng, peak);
                    let phase = 2.0 * std::f64::consts::PI * t / period_ns as f64;
                    let rate_t = base_rate_hz * (1.0 + amp * phase.sin());
                    if self.rng.gen::<f64>() * peak <= rate_t {
                        break t;
                    }
                }
            }
        };
        // Quantize to whole virtual nanoseconds, strictly advancing.
        (t.ceil() as u64).max(now_ns + 1)
    }
}

/// Exponential inter-arrival interval in nanoseconds for a rate in Hz.
fn exp_interval_ns(rng: &mut StdRng, rate_hz: f64) -> f64 {
    exp_sample(rng, 1e9 / rate_hz)
}

/// Exponential sample with the given mean (inverse-CDF transform; the
/// `1 - u` keeps the argument of `ln` in `(0, 1]` for `u ∈ [0, 1)`).
fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(process: ArrivalProcess, seed: u64, until_ns: u64) -> Vec<u64> {
        let mut gen = ArrivalGen::new(process, seed);
        let mut out = Vec::new();
        let mut t = 0u64;
        loop {
            t = gen.next_after(t);
            if t >= until_ns {
                break out;
            }
            out.push(t);
        }
    }

    #[test]
    fn poisson_rate_is_roughly_respected() {
        // 100k arrivals/s over 0.1 virtual seconds ≈ 10_000 arrivals.
        let n = collect(
            ArrivalProcess::Poisson { rate_hz: 100_000.0 },
            1,
            100_000_000,
        )
        .len() as f64;
        assert!((8_000.0..12_000.0).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn arrivals_are_deterministic_in_the_seed() {
        let p = ArrivalProcess::Bursty {
            on_rate_hz: 50_000.0,
            off_rate_hz: 1_000.0,
            mean_on_ns: 2_000_000.0,
            mean_off_ns: 2_000_000.0,
        };
        let a = collect(p, 99, 50_000_000);
        let b = collect(p, 99, 50_000_000);
        assert_eq!(a, b, "same seed must replay bitwise");
        let c = collect(p, 100, 50_000_000);
        assert_ne!(a, c, "different seed must diverge");
    }

    #[test]
    fn arrivals_strictly_increase() {
        for p in [
            ArrivalProcess::Poisson { rate_hz: 1e9 },
            ArrivalProcess::Diurnal {
                base_rate_hz: 1e8,
                amplitude: 0.8,
                period_ns: 1_000_000,
            },
        ] {
            let times = collect(p, 7, 1_000_000);
            assert!(!times.is_empty());
            assert!(
                times.windows(2).all(|w| w[0] < w[1]),
                "{p:?} produced non-increasing arrivals"
            );
        }
    }

    #[test]
    fn bursty_is_actually_bursty() {
        // With a hot on-phase and a dead off-phase, arrival gaps are
        // bimodal: many short intra-burst gaps plus a few long inter-burst
        // gaps.
        let times = collect(
            ArrivalProcess::Bursty {
                on_rate_hz: 1_000_000.0,
                off_rate_hz: 0.0,
                mean_on_ns: 1_000_000.0,
                mean_off_ns: 5_000_000.0,
            },
            3,
            100_000_000,
        );
        assert!(times.len() > 20, "got only {} arrivals", times.len());
        let gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let long = gaps.iter().filter(|&&g| g > 2_000_000).count();
        let short = gaps.iter().filter(|&&g| g < 100_000).count();
        assert!(long >= 2, "expected inter-burst gaps, got {long}");
        assert!(short > gaps.len() / 2, "expected dense bursts");
    }

    #[test]
    fn zero_rate_processes_never_fire() {
        let mut gen = ArrivalGen::new(ArrivalProcess::Poisson { rate_hz: 0.0 }, 5);
        assert_eq!(gen.next_after(0), u64::MAX);
        let mut gen = ArrivalGen::new(
            ArrivalProcess::Bursty {
                on_rate_hz: 0.0,
                off_rate_hz: 0.0,
                mean_on_ns: 1.0,
                mean_off_ns: 1.0,
            },
            5,
        );
        assert_eq!(gen.next_after(123), u64::MAX);
    }

    #[test]
    fn diurnal_modulates_density() {
        // Amplitude 1: the trough rate is ~0, the crest ~2·base. Compare
        // arrival counts in the first (rising, sin>0) and second half of
        // one period.
        let period = 10_000_000u64;
        let times = collect(
            ArrivalProcess::Diurnal {
                base_rate_hz: 1_000_000.0,
                amplitude: 1.0,
                period_ns: period,
            },
            11,
            period,
        );
        let crest = times.iter().filter(|&&t| t < period / 2).count();
        let trough = times.len() - crest;
        assert!(
            crest > trough * 2,
            "crest half {crest} should dominate trough half {trough}"
        );
    }
}
